// WarpContext: the instruction set of the simulated SIMT machine.
//
// Kernels are written in warp-synchronous style: every operation takes an
// active-lane mask and executes for all 32 lanes at once; inactive lanes keep
// their previous register values (predicated execution).  Host-side `if`/`for`
// over masks plays the role of the hardware's divergence stack: a path whose
// mask is empty is skipped (as hardware does for a unanimous branch), and a
// path executed with a sparse mask is charged full instruction slots — that
// charge *is* branch divergence.
//
// Cost accounting conventions (asserted by tests):
//  * every WarpContext operation issues exactly one warp instruction unless
//    documented otherwise (reductions and conflicted shared accesses issue
//    more);
//  * useful lane-slots accrue popcount(mask) per issued instruction;
//  * global accesses additionally count one 128-byte transaction per distinct
//    segment touched by active lanes (coalescing model);
//  * shared accesses replay once per conflicting bank access.
#pragma once

#include <algorithm>
#include <bit>
#include <cmath>
#include <cstdint>
#include <limits>
#include <optional>
#include <sstream>
#include <string>
#include <type_traits>

#include "simt/fault_injection.hpp"
#include "simt/memory.hpp"
#include "simt/metrics.hpp"
#include "simt/profiler.hpp"
#include "simt/sanitizer.hpp"
#include "simt/types.hpp"
#include "util/check.hpp"

namespace gpuksel::simt {

class ScopedRegion;

class WarpContext {
 public:
  /// Direct construction (unit tests) leaves `sanitizer` null: no checks, the
  /// legacy permissive machine.  Device::launch always passes its sanitizer
  /// and, when a profiler is attached, this warp's WarpProfile slot.
  WarpContext(KernelMetrics& metrics, std::uint32_t warp_id,
              const SanitizerConfig* sanitizer = nullptr,
              FaultInjector* injector = nullptr,
              const char* kernel_name = "kernel",
              WarpProfile* profile = nullptr) noexcept
      : metrics_(metrics),
        warp_id_(warp_id),
        sanitizer_(sanitizer),
        injector_(injector),
        kernel_name_(kernel_name),
        profile_(profile),
        unchecked_(injector == nullptr &&
                   (sanitizer == nullptr || !sanitizer->any_check_on())) {}

  WarpContext(const WarpContext&) = delete;
  WarpContext& operator=(const WarpContext&) = delete;

  [[nodiscard]] std::uint32_t warp_id() const noexcept { return warp_id_; }
  [[nodiscard]] KernelMetrics& metrics() noexcept { return metrics_; }
  [[nodiscard]] const SanitizerConfig* sanitizer() const noexcept {
    return sanitizer_;
  }
  [[nodiscard]] const char* kernel_name() const noexcept {
    return kernel_name_;
  }

  /// Reports a sanitizer fault with full execution context (public so that
  /// SharedArray can report through its owning context).
  [[noreturn]] void fault(FaultKind kind, int lane, std::string detail) const {
    raise_fault(FaultRecord{kind, kernel_name_, warp_id_,
                            metrics_.instructions, lane, std::move(detail)});
  }

  /// The canonical lane-index register (threadIdx.x % 32).  Free: it is a
  /// hardware special register.
  [[nodiscard]] static U32 lane_id() noexcept {
    return U32::iota();
  }

  /// Charges `count` warp instructions executed under mask `m`.
  void issue(LaneMask m, std::uint64_t count = 1) noexcept {
    metrics_.instructions += count;
    metrics_.useful_lane_slots +=
        count * static_cast<std::uint64_t>(popcount(m));
  }

  // --- profiling regions ----------------------------------------------------

  /// Opens a named profiling region scoped to the returned guard; counters
  /// accrued while it is the innermost open region are attributed to `name`.
  /// Free (regions charge no instructions) and a no-op when no profiler is
  /// attached.  `name` must be a string literal (stable for the launch).
  [[nodiscard]] ScopedRegion region(const char* name);

  /// Raw region controls for non-RAII callers; prefer region().
  void enter_region(const char* name) {
    if (profile_ != nullptr) profile_->enter(name, metrics_);
  }
  void exit_region() {
    if (profile_ != nullptr) profile_->exit(metrics_);
  }

  // --- register moves -----------------------------------------------------

  /// Broadcast an immediate into active lanes of `dst` (move-immediate).
  template <typename T>
  void mov(LaneMask m, WarpVar<T>& dst, T value) noexcept {
    issue(m);
    for_active(m, [&](int i) { dst[i] = value; });
  }

  /// Fresh register holding `value` in every lane.
  template <typename T>
  WarpVar<T> imm(LaneMask m, T value) noexcept {
    WarpVar<T> v = WarpVar<T>::filled(value);
    issue(m);
    return v;
  }

  /// Copy active lanes of `src` into `dst`.
  template <typename T>
  void cpy(LaneMask m, WarpVar<T>& dst, const WarpVar<T>& src) noexcept {
    issue(m);
    for_active(m, [&](int i) { dst[i] = src[i]; });
  }

  // --- ALU -----------------------------------------------------------------

  /// Generic one-instruction ALU op: dst[i] = f(i) for active lanes.  The
  /// functor must be a per-lane expression over already-held registers.
  template <typename T, typename F>
  void alu(LaneMask m, WarpVar<T>& dst, F&& f) noexcept {
    issue(m);
    for_active(m, [&](int i) { dst[i] = f(i); });
  }

  template <typename T>
  WarpVar<T> add(LaneMask m, const WarpVar<T>& a, const WarpVar<T>& b) noexcept {
    WarpVar<T> r = a;
    alu(m, r, [&](int i) { return static_cast<T>(a[i] + b[i]); });
    return r;
  }

  template <typename T>
  WarpVar<T> add(LaneMask m, const WarpVar<T>& a, T b) noexcept {
    WarpVar<T> r = a;
    alu(m, r, [&](int i) { return static_cast<T>(a[i] + b); });
    return r;
  }

  template <typename T>
  WarpVar<T> sub(LaneMask m, const WarpVar<T>& a, const WarpVar<T>& b) noexcept {
    WarpVar<T> r = a;
    alu(m, r, [&](int i) { return static_cast<T>(a[i] - b[i]); });
    return r;
  }

  template <typename T>
  WarpVar<T> mul(LaneMask m, const WarpVar<T>& a, T b) noexcept {
    WarpVar<T> r = a;
    alu(m, r, [&](int i) { return static_cast<T>(a[i] * b); });
    return r;
  }

  /// dst[i] = cond lane i active in `take` ? a[i] : b[i] — a select executed
  /// under `m` (both operands already in registers).
  template <typename T>
  WarpVar<T> select(LaneMask m, LaneMask take, const WarpVar<T>& a,
                    const WarpVar<T>& b) noexcept {
    WarpVar<T> r = b;
    alu(m, r, [&](int i) { return lane_active(take, i) ? a[i] : b[i]; });
    return r;
  }

  // --- predicates ----------------------------------------------------------

  /// Generic compare producing a predicate mask restricted to `m`.
  template <typename F>
  LaneMask pred(LaneMask m, F&& f) noexcept {
    issue(m);
    LaneMask out = 0;
    for_active(m, [&](int i) {
      if (f(i)) out |= lane_bit(i);
    });
    return out;
  }

  template <typename T>
  LaneMask cmp_lt(LaneMask m, const WarpVar<T>& a, const WarpVar<T>& b) noexcept {
    return pred(m, [&](int i) { return a[i] < b[i]; });
  }
  template <typename T>
  LaneMask cmp_lt(LaneMask m, const WarpVar<T>& a, T b) noexcept {
    return pred(m, [&](int i) { return a[i] < b; });
  }
  template <typename T>
  LaneMask cmp_le(LaneMask m, const WarpVar<T>& a, const WarpVar<T>& b) noexcept {
    return pred(m, [&](int i) { return a[i] <= b[i]; });
  }
  template <typename T>
  LaneMask cmp_gt(LaneMask m, const WarpVar<T>& a, const WarpVar<T>& b) noexcept {
    return pred(m, [&](int i) { return a[i] > b[i]; });
  }
  template <typename T>
  LaneMask cmp_ge(LaneMask m, const WarpVar<T>& a, const WarpVar<T>& b) noexcept {
    return pred(m, [&](int i) { return a[i] >= b[i]; });
  }
  template <typename T>
  LaneMask cmp_eq(LaneMask m, const WarpVar<T>& a, T b) noexcept {
    return pred(m, [&](int i) { return a[i] == b; });
  }

  // --- votes and shuffles --------------------------------------------------

  /// __ballot_sync: one instruction; the predicate is already a mask in our
  /// representation, so this just charges the vote and returns it.
  LaneMask ballot(LaneMask m, LaneMask predicate) noexcept {
    issue(m);
    return predicate & m;
  }

  /// __any_sync.
  bool any(LaneMask m, LaneMask predicate) noexcept {
    issue(m);
    return (predicate & m) != 0;
  }

  /// __all_sync.
  bool all(LaneMask m, LaneMask predicate) noexcept {
    issue(m);
    return (predicate & m) == m;
  }

  /// __shfl_sync: every active lane reads `src` from lane `from[i] % 32`.
  /// Reading from a lane outside the mask returns stale data on hardware;
  /// the sanitizer's lockstep check faults instead.
  template <typename T>
  WarpVar<T> shfl(LaneMask m, const WarpVar<T>& src, const U32& from) {
    if (lockstep_on()) {
      for_active(m, [&](int i) {
        check_shuffle_source(m, i, static_cast<int>(from[i] % kWarpSize));
      });
    }
    WarpVar<T> r = src;
    alu(m, r, [&](int i) { return src[from[i] % kWarpSize]; });
    return r;
  }

  /// __shfl_xor_sync with a compile-time lane mask (butterfly step).
  template <typename T>
  WarpVar<T> shfl_xor(LaneMask m, const WarpVar<T>& src, int lanemask) {
    if (lockstep_on()) {
      for_active(m, [&](int i) {
        check_shuffle_source(m, i, (i ^ lanemask) % kWarpSize);
      });
    }
    WarpVar<T> r = src;
    alu(m, r, [&](int i) { return src[i ^ lanemask]; });
    return r;
  }

  /// Broadcast the value held by `src_lane` to all active lanes.
  template <typename T>
  WarpVar<T> shfl_bcast(LaneMask m, const WarpVar<T>& src, int src_lane) {
    if (lockstep_on() && m != 0) {
      check_shuffle_source(m, lowest_lane(m), src_lane % kWarpSize);
    }
    WarpVar<T> r = src;
    alu(m, r, [&](int) { return src[src_lane % kWarpSize]; });
    return r;
  }

  // --- global memory ---------------------------------------------------------

  /// Gather: dst[i] = span[idx[i]] for active lanes.  One instruction, one
  /// request, and one transaction per distinct 128-byte segment touched.
  ///
  /// Under a sanitizer the load additionally runs, in order: fault injection
  /// on the effective address, bounds check, uninitialized-read check, fault
  /// injection on the loaded values, ECC shadow verification, NaN policy.
  template <typename T>
  WarpVar<T> load(LaneMask m, DeviceSpan<const T> span, const U32& idx) {
    WarpVar<T> r{};
    issue(m);
    // Fast path: with no injector and every sanitizer check off, the
    // per-access decisions below are all constant no — skip them rather than
    // re-deriving that per lane.  Cost accounting is identical either way.
    if (unchecked_) {
      charge_transactions<T>(m, span, idx, /*is_store=*/false);
      for_active(m, [&](int i) { r[i] = span.at(idx[i]); });
      return r;
    }
    const auto planned = consult_injector<T>(m, /*is_load=*/true);
    U32 eidx = idx;
    if (planned) apply_index_fault(*planned, span.size(), eidx);
    check_bounds(m, span.size(), eidx, /*is_store=*/false);
    charge_transactions<T>(m, span, eidx, /*is_store=*/false);
    check_initialized(m, span, eidx);
    for_active(m, [&](int i) { r[i] = span.at(eidx[i]); });
    if (planned) apply_value_fault(*planned, r);
    verify_loaded(m, span, eidx, r);
    return r;
  }

  template <typename T>
  WarpVar<T> load(LaneMask m, DeviceSpan<T> span, const U32& idx) {
    return load(m, DeviceSpan<const T>(span), idx);
  }

  /// Scatter: span[idx[i]] = v[i] for active lanes.  Lanes writing the same
  /// address commit in lane order (highest lane wins), matching CUDA's
  /// undefined-but-single-winner semantics deterministically — unless the
  /// sanitizer's lockstep check is on, in which case a collision faults (all
  /// kernels in this repo write thread-distinct addresses).
  template <typename T>
  void store(LaneMask m, DeviceSpan<T> span, const U32& idx,
             const WarpVar<T>& v) {
    issue(m);
    // Fast path (see load): no checks to run, and the has_shadow branch is
    // hoisted out of the lane loop.  Shadow bytes are still maintained so a
    // later launch with ecc/poison re-enabled sees coherent metadata.
    if (unchecked_) {
      charge_transactions<T>(m, span, idx, /*is_store=*/true);
      if (span.has_shadow()) {
        for_active(m, [&](int i) {
          span.at(idx[i]) = v[i];
          span.set_shadow(idx[i], shadow_of(v[i]));
        });
      } else {
        for_active(m, [&](int i) { span.at(idx[i]) = v[i]; });
      }
      return;
    }
    const auto planned = consult_injector<T>(m, /*is_load=*/false);
    U32 eidx = idx;
    if (planned) apply_index_fault(*planned, span.size(), eidx);
    check_bounds(m, span.size(), eidx, /*is_store=*/true);
    check_store_collisions(m, eidx);
    charge_transactions<T>(m, span, eidx, /*is_store=*/true);
    const bool shadow = span.has_shadow();
    for_active(m, [&](int i) {
      span.at(eidx[i]) = v[i];
      if (shadow) span.set_shadow(eidx[i], shadow_of(v[i]));
    });
  }

  /// Store an immediate to span[idx[i]] for active lanes.
  template <typename T>
  void store(LaneMask m, DeviceSpan<T> span, const U32& idx, T value) {
    store(m, span, idx, WarpVar<T>::filled(value));
  }

  // --- shared memory accounting (used by SharedArray) -----------------------

  /// Charges one shared request issued under `m` touching the given 4-byte
  /// bank words; replays once per extra conflicting access in a bank.
  void charge_shared(LaneMask m, const U32& bank_words) noexcept {
    std::uint8_t per_bank_addrs[kWarpSize] = {};
    std::uint32_t bank_addr[kWarpSize] = {};
    for (int i = 0; i < kWarpSize; ++i) {
      if (!lane_active(m, i)) continue;
      const std::uint32_t word = bank_words[i];
      const int bank = static_cast<int>(word % kWarpSize);
      // Same word in same bank broadcasts for free; a different word in an
      // occupied bank forces a replay.
      if (per_bank_addrs[bank] == 0) {
        per_bank_addrs[bank] = 1;
        bank_addr[bank] = word;
      } else if (bank_addr[bank] != word) {
        ++per_bank_addrs[bank];
        bank_addr[bank] = word;
      }
    }
    int degree = 1;
    for (int b = 0; b < kWarpSize; ++b) {
      degree = std::max(degree, static_cast<int>(per_bank_addrs[b]));
    }
    issue(m, static_cast<std::uint64_t>(degree));
    metrics_.shared_requests += 1;
    metrics_.shared_conflict_replays += static_cast<std::uint64_t>(degree - 1);
  }

 private:
  template <typename F>
  static void for_active(LaneMask m, F&& f) {
    for (int i = 0; i < kWarpSize; ++i) {
      if (lane_active(m, i)) f(i);
    }
  }

  // --- sanitizer / fault-injection plumbing ---------------------------------

  [[nodiscard]] bool lockstep_on() const noexcept {
    return sanitizer_ != nullptr && sanitizer_->lockstep;
  }
  [[nodiscard]] bool bounds_on() const noexcept {
    return sanitizer_ != nullptr && sanitizer_->bounds;
  }

  void check_shuffle_source(LaneMask m, int lane, int src_lane) const {
    if (lane_active(m, src_lane)) return;
    std::ostringstream os;
    os << "shuffle reads lane " << src_lane << " which is inactive in mask 0x"
       << std::hex << m;
    fault(FaultKind::kShuffleInactiveSource, lane, os.str());
  }

  template <typename T>
  std::optional<PlannedFault> consult_injector(LaneMask m, bool is_load) {
    if (injector_ == nullptr) return std::nullopt;
    return injector_->on_global_access(warp_id_, m, is_load,
                                       std::is_floating_point_v<T>);
  }

  /// Applies the address-corrupting fault class.  Only armed when the bounds
  /// check will catch it — otherwise the simulator itself would read out of
  /// range, which models nothing.
  void apply_index_fault(const PlannedFault& planned, std::size_t size,
                         U32& eidx) const noexcept {
    if (planned.kind != InjectKind::kOobIndex || !bounds_on()) return;
    eidx[planned.lane] = static_cast<std::uint32_t>(size + planned.oob_extra);
  }

  /// Applies the value-corrupting fault classes to freshly loaded registers.
  template <typename T>
  void apply_value_fault(const PlannedFault& planned, WarpVar<T>& r) const {
    switch (planned.kind) {
      case InjectKind::kBitFlip:
        if constexpr (sizeof(T) == 4) {
          auto word = std::bit_cast<std::uint32_t>(r[planned.lane]);
          word ^= (1u << planned.bit);
          r[planned.lane] = std::bit_cast<T>(word);
        }
        break;
      case InjectKind::kNanInject:
      case InjectKind::kLaneDrop:
        // A dropped lane leaves its destination register unwritten; the
        // simulator poisons it so the loss is observable, like NaN injection.
        if constexpr (std::is_floating_point_v<T>) {
          r[planned.lane] = std::numeric_limits<T>::quiet_NaN();
        }
        break;
      case InjectKind::kOobIndex:
        break;  // applied to the address, not the value
    }
  }

  void check_bounds(LaneMask m, std::size_t size, const U32& idx,
                    bool is_store) const {
    if (!bounds_on()) return;
    for_active(m, [&](int i) {
      if (idx[i] < size) return;
      std::ostringstream os;
      os << "global " << (is_store ? "store" : "load") << " index " << idx[i]
         << " >= size " << size;
      fault(FaultKind::kOutOfBounds, i, os.str());
    });
  }

  template <typename T>
  void check_initialized(LaneMask m, DeviceSpan<const T> span,
                         const U32& idx) const {
    if (sanitizer_ == nullptr || !sanitizer_->poison || !span.has_shadow()) {
      return;
    }
    for_active(m, [&](int i) {
      if (span.shadow_at(idx[i]) != kShadowUninit) return;
      std::ostringstream os;
      os << "global load of element " << idx[i] << " before any store";
      fault(FaultKind::kUninitializedRead, i, os.str());
    });
  }

  /// ECC decode at the consumer: the loaded (possibly injector-corrupted)
  /// register must match the shadow checksum written alongside the element.
  /// Runs before NaN remapping so a legitimate stored NaN never false-trips.
  template <typename T>
  void verify_loaded(LaneMask m, DeviceSpan<const T> span, const U32& idx,
                     WarpVar<T>& r) const {
    if (sanitizer_ == nullptr) return;
    if (sanitizer_->ecc && span.has_shadow()) {
      for_active(m, [&](int i) {
        const std::uint8_t expect = span.shadow_at(idx[i]);
        if (expect == kShadowUninit || shadow_of(r[i]) == expect) return;
        std::ostringstream os;
        os << "loaded word at element " << idx[i]
           << " disagrees with its shadow checksum (corrupted memory)";
        fault(FaultKind::kEccMismatch, i, os.str());
      });
    }
    if constexpr (std::is_floating_point_v<T>) {
      if (sanitizer_->nan_policy == NanPolicy::kReject) {
        for_active(m, [&](int i) {
          if (!std::isnan(r[i])) return;
          std::ostringstream os;
          os << "NaN loaded from element " << idx[i]
             << " under NanPolicy::kReject";
          fault(FaultKind::kNanDistance, i, os.str());
        });
      } else if (sanitizer_->nan_policy == NanPolicy::kSortLast) {
        for_active(m, [&](int i) {
          if (std::isnan(r[i])) r[i] = std::numeric_limits<T>::infinity();
        });
      }
    }
  }

  void check_store_collisions(LaneMask m, const U32& idx) const {
    if (!lockstep_on()) return;
    for (int i = 0; i < kWarpSize; ++i) {
      if (!lane_active(m, i)) continue;
      for (int j = i + 1; j < kWarpSize; ++j) {
        if (!lane_active(m, j) || idx[i] != idx[j]) continue;
        std::ostringstream os;
        os << "lanes " << i << " and " << j
           << " both store to element " << idx[i] << " under mask 0x"
           << std::hex << m;
        fault(FaultKind::kStoreCollision, j, os.str());
      }
    }
  }

  template <typename T, typename SpanT>
  void charge_transactions(LaneMask m, const SpanT& span, const U32& idx,
                           bool is_store) {
    std::uint64_t segments[kWarpSize];
    int n = 0;
    for (int i = 0; i < kWarpSize; ++i) {
      if (!lane_active(m, i)) continue;
      const std::uint64_t seg = span.byte_offset(idx[i]) / kTransactionBytes;
      bool seen = false;
      for (int j = 0; j < n; ++j) {
        if (segments[j] == seg) {
          seen = true;
          break;
        }
      }
      if (!seen) segments[n++] = seg;
    }
    metrics_.global_requests += 1;
    if (is_store) {
      metrics_.global_store_tx += static_cast<std::uint64_t>(n);
    } else {
      metrics_.global_load_tx += static_cast<std::uint64_t>(n);
    }
  }

  KernelMetrics& metrics_;
  std::uint32_t warp_id_;
  const SanitizerConfig* sanitizer_ = nullptr;
  FaultInjector* injector_ = nullptr;
  const char* kernel_name_ = "kernel";
  WarpProfile* profile_ = nullptr;
  /// No injector and no live sanitizer check at construction: global
  /// accesses take the branch-free fast path.  Cached once per warp — the
  /// config cannot change mid-launch.
  bool unchecked_ = false;
};

/// RAII guard for a WarpContext profiling region; closes it on destruction.
/// Obtained from WarpContext::region() — guaranteed copy elision means the
/// region opens and closes exactly once per guard.
class ScopedRegion {
 public:
  ScopedRegion(WarpContext& ctx, const char* name) : ctx_(ctx) {
    ctx_.enter_region(name);
  }
  ~ScopedRegion() { ctx_.exit_region(); }

  ScopedRegion(const ScopedRegion&) = delete;
  ScopedRegion& operator=(const ScopedRegion&) = delete;

 private:
  WarpContext& ctx_;
};

inline ScopedRegion WarpContext::region(const char* name) {
  return ScopedRegion(*this, name);
}

/// Per-warp shared-memory array with bank-conflict accounting.  The paper
/// places one "volatile shared int flag" per warp for Intra-Warp
/// Communication and uses shared scratch in the warp-cooperative baselines.
template <typename T>
class SharedArray {
 public:
  SharedArray(WarpContext& ctx, std::size_t n, T fill = T{})
      : ctx_(ctx), data_(n, fill) {
    static_assert(sizeof(T) % 4 == 0 || sizeof(T) == 4 || sizeof(T) <= 4,
                  "shared bank model assumes word-multiple elements");
  }

  [[nodiscard]] std::size_t size() const noexcept { return data_.size(); }

  /// Gather from shared memory.
  WarpVar<T> read(LaneMask m, const U32& idx) {
    check_indices(m, idx);
    charge(m, idx);
    WarpVar<T> r{};
    for (int i = 0; i < kWarpSize; ++i) {
      if (lane_active(m, i)) r[i] = at(idx[i]);
    }
    return r;
  }

  /// Scatter to shared memory (highest active lane wins on collisions when
  /// the sanitizer is off; a fault when its lockstep check is on).
  void write(LaneMask m, const U32& idx, const WarpVar<T>& v) {
    check_indices(m, idx);
    check_collisions(m, idx);
    charge(m, idx);
    for (int i = 0; i < kWarpSize; ++i) {
      if (lane_active(m, i)) at(idx[i]) = v[i];
    }
  }

  /// All active lanes read slot `slot` (a broadcast: conflict-free).
  WarpVar<T> read_bcast(LaneMask m, std::size_t slot) {
    check_slot(slot);
    charge(m, U32::filled(static_cast<std::uint32_t>(slot)));
    return WarpVar<T>::filled(at(slot));
  }

  /// All active lanes write `value` to slot `slot` (the paper's flag write;
  /// a deliberate single-address broadcast, exempt from the collision check).
  void write_bcast(LaneMask m, std::size_t slot, T value) {
    check_slot(slot);
    charge(m, U32::filled(static_cast<std::uint32_t>(slot)));
    at(slot) = value;
  }

  /// Simulator-side access for verification.
  [[nodiscard]] const std::vector<T>& host() const noexcept { return data_; }

 private:
  T& at(std::size_t i) {
    GPUKSEL_DEBUG_ASSERT(i < data_.size());
    return data_[i];
  }

  [[nodiscard]] bool lockstep_on() const noexcept {
    return ctx_.sanitizer() != nullptr && ctx_.sanitizer()->lockstep;
  }

  void check_indices(LaneMask m, const U32& idx) const {
    if (!lockstep_on()) return;
    for (int i = 0; i < kWarpSize; ++i) {
      if (!lane_active(m, i) || idx[i] < data_.size()) continue;
      std::ostringstream os;
      os << "shared index " << idx[i] << " >= array size " << data_.size();
      ctx_.fault(FaultKind::kSharedOutOfBounds, i, os.str());
    }
  }

  void check_slot(std::size_t slot) const {
    if (!lockstep_on() || slot < data_.size()) return;
    std::ostringstream os;
    os << "shared slot " << slot << " >= array size " << data_.size();
    ctx_.fault(FaultKind::kSharedOutOfBounds, -1, os.str());
  }

  void check_collisions(LaneMask m, const U32& idx) const {
    if (!lockstep_on()) return;
    for (int i = 0; i < kWarpSize; ++i) {
      if (!lane_active(m, i)) continue;
      for (int j = i + 1; j < kWarpSize; ++j) {
        if (!lane_active(m, j) || idx[i] != idx[j]) continue;
        std::ostringstream os;
        os << "lanes " << i << " and " << j << " both write shared element "
           << idx[i];
        ctx_.fault(FaultKind::kStoreCollision, j, os.str());
      }
    }
  }

  void charge(LaneMask m, const U32& idx) {
    U32 words;
    const std::uint32_t words_per_elem =
        static_cast<std::uint32_t>(std::max<std::size_t>(1, sizeof(T) / 4));
    for (int i = 0; i < kWarpSize; ++i) {
      words[i] = idx[i] * words_per_elem;
    }
    ctx_.charge_shared(m, words);
  }

  WarpContext& ctx_;
  std::vector<T> data_;
};

}  // namespace gpuksel::simt
