// SanitizerConfig: the always-on safety net of the simulated SIMT machine.
//
// Real GPU debugging relies on external tools (cuda-memcheck, compute
// sanitizer); a functional simulator can do better and make the checks part
// of the machine.  Every Device owns a SanitizerConfig and hands it to each
// WarpContext it launches, so every global load/store, shared access and
// shuffle is validated as it executes:
//
//  * bounds       — global loads/stores must index inside the span;
//  * poison       — loading an element no store (or upload) ever wrote is a
//                   fault, modeled with one shadow byte per element;
//  * ecc          — the same shadow byte stores a 7-bit checksum of the
//                   element, so any single-bit corruption of device memory is
//                   detected at the next load (ECC-style integrity);
//  * lockstep     — warp-level invariants: shuffles must source active lanes,
//                   colliding stores under a mask fault, shared indices stay
//                   in range;
//  * nan_policy   — float loads may reject or remap NaN (hostile distances).
//
// Faults throw SimtFaultError (util/check.hpp) carrying kernel name, warp id
// and retired-instruction count.  Constructing a WarpContext directly (unit
// tests) leaves the sanitizer pointer null: legacy permissive behavior.
#pragma once

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <string>

#include "util/check.hpp"

namespace gpuksel::simt {

struct SanitizerConfig {
  bool bounds = true;    ///< global-memory bounds checks
  bool poison = true;    ///< uninitialized-read detection
  bool ecc = true;       ///< shadow-checksum integrity verification on loads
  bool lockstep = true;  ///< shuffle-source / store-collision / shared-OOB
  NanPolicy nan_policy = NanPolicy::kPropagate;

  /// All checks off — the pre-sanitizer simulator behavior.
  [[nodiscard]] static constexpr SanitizerConfig off() noexcept {
    return SanitizerConfig{false, false, false, false, NanPolicy::kPropagate};
  }

  /// Whether any per-access check is live.  When false (and no injector is
  /// attached) WarpContext takes its unchecked fast path for global memory.
  [[nodiscard]] constexpr bool any_check_on() const noexcept {
    return bounds || poison || ecc || lockstep ||
           nan_policy != NanPolicy::kPropagate;
  }
};

/// Scoped override of a device's NaN policy: sets `policy` on construction,
/// restores the previous policy on destruction — exception-safe, so callers
/// that probe with NanPolicy::kReject and fall back (e.g. BruteForceKnn) need
/// no catch-restore-rethrow boilerplate.
class ScopedNanPolicy {
 public:
  ScopedNanPolicy(SanitizerConfig& cfg, NanPolicy policy) noexcept
      : cfg_(cfg), saved_(cfg.nan_policy) {
    cfg_.nan_policy = policy;
  }
  ~ScopedNanPolicy() { cfg_.nan_policy = saved_; }

  ScopedNanPolicy(const ScopedNanPolicy&) = delete;
  ScopedNanPolicy& operator=(const ScopedNanPolicy&) = delete;

 private:
  SanitizerConfig& cfg_;
  NanPolicy saved_;
};

/// One-line human-readable summary ("bounds+poison+ecc+lockstep nan=reject").
[[nodiscard]] std::string to_string(const SanitizerConfig& cfg);

// --- shadow memory encoding -------------------------------------------------
//
// One word per element.  0x00 means "never written".  A written element holds
// 0x80 | fold7(bytes): bit 7 marks initialized, bits 0..6 hold the element's
// bytes XOR-folded to 7 bits.  Flipping any single bit of a 4-byte element
// flips exactly one bit of the fold, so every single-bit corruption is
// detected; multi-bit corruptions are detected unless they cancel in the
// fold (the same guarantee class as SEC-DED ECC's detection side).  The
// encoding fits a byte; storage is a 32-bit word so the lane engine can
// gather/scatter shadow rows with the same dword instructions it uses for
// data (lane_vec.hpp shadow_words / shadow_mismatch_mask).

inline constexpr std::uint32_t kShadowUninit = 0x00;

/// 7-bit XOR fold of an element's object representation, tagged initialized.
template <typename T>
[[nodiscard]] inline std::uint32_t shadow_of(const T& value) noexcept {
  static_assert(sizeof(T) <= 16, "shadow fold expects small scalar elements");
  unsigned char bytes[sizeof(T)];
  std::memcpy(bytes, &value, sizeof(T));
  std::uint8_t fold = 0;
  for (std::size_t i = 0; i < sizeof(T); ++i) {
    fold = static_cast<std::uint8_t>(fold ^ bytes[i]);
  }
  // Fold 8 bits down to 7 so bit 7 is free for the initialized tag.
  fold = static_cast<std::uint8_t>((fold ^ (fold >> 7)) & 0x7f);
  return static_cast<std::uint32_t>(0x80u | fold);
}

/// Throws SimtFaultError for `record`; the single funnel every sanitizer
/// check reports through (kept out of line so warp.hpp stays lean).
[[noreturn]] void raise_fault(FaultRecord record);

}  // namespace gpuksel::simt
