// Per-kernel, per-region profiling and tracing for the simulated device.
//
// The paper's whole argument is made in counters — SIMT efficiency, memory
// transactions, elements visited (§III–IV) — so the profiler makes every one
// of them attributable: Device::launch records one KernelRecord per launch
// (per-warp and aggregate KernelMetrics, host wall time, worker-thread count,
// and the cost model's instruction-vs-memory roofline breakdown), and kernels
// open named scoped regions through WarpContext::region() so divergence and
// transaction hotspots are charged to the code region that caused them
// (buffer_flush, reverse_bitonic_merge, hp_offer, ...).
//
// Attribution model: a region's *self* metrics are the counters accumulated
// while it was the innermost open region; work outside any region lands in
// the synthetic "(unattributed)" region.  Self metrics therefore partition
// the launch exactly — per warp and per launch they sum to the aggregate
// KernelMetrics, which tests/profiler_test.cpp asserts.
//
// Determinism: regions charge no instructions and every per-warp profile is
// collected into its own slot and reduced in ascending warp order, so all
// profile content except the two host-execution fields (wall_seconds,
// worker_threads) is bit-identical for any executor thread count.  The trace
// timeline is the warp's *instruction counter*, not wall time, for the same
// reason.  set_include_host_info(false) zeroes the two host fields so whole
// exports can be byte-compared (tests/executor_determinism_test.cpp).
//
// Exports: write_report() (machine-readable JSON), write_trace() (Chrome
// trace_event JSON, loadable in chrome://tracing or Perfetto; ts/dur are
// instruction counts), write_regions_csv() (flat per-region CSV).
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "simt/cost_model.hpp"
#include "simt/metrics.hpp"

namespace gpuksel::simt {

/// Name of the synthetic region holding work outside any open region.
inline constexpr const char* kUnattributedRegion = "(unattributed)";

/// Writes one KernelMetrics as a JSON object (counters plus the derived
/// simt_efficiency / transactions_per_request ratios) — the same encoding
/// write_report() uses, exposed for other JSON emitters (the shard report).
void write_metrics_json(std::ostream& os, const KernelMetrics& m);

/// One closed region instance on one warp's timeline.  The "timestamps" are
/// the warp's instruction counter at entry/exit (deterministic; see above).
struct TraceSpan {
  const char* name = nullptr;
  std::uint32_t depth = 0;  ///< nesting depth (0 = top level)
  std::uint64_t begin_instructions = 0;
  std::uint64_t end_instructions = 0;

  friend bool operator==(const TraceSpan&, const TraceSpan&) = default;
};

/// Aggregated counters of one named region (exclusive/self attribution).
struct RegionStats {
  std::string name;
  std::uint64_t calls = 0;  ///< region entries (0 for "(unattributed)")
  KernelMetrics self;       ///< counters while innermost; sums to the launch

  friend bool operator==(const RegionStats&, const RegionStats&) = default;
};

/// Per-warp region collector.  Device::launch gives every warp its own
/// WarpProfile slot (like its KernelMetrics slot); WarpContext::region()
/// drives enter()/exit().  Region names must be string literals (stable
/// storage for the whole launch).
class WarpProfile {
 public:
  /// Caps `spans()` (the timeline); region *stats* are always exact.  Spans
  /// past the cap are counted in dropped_spans(), never silently lost.
  void set_span_capacity(std::size_t cap) noexcept { span_capacity_ = cap; }

  /// Opens a region: counters from now on are charged to `name` until a
  /// nested region opens or this one exits.
  void enter(const char* name, const KernelMetrics& now);

  /// Closes the innermost region (unbalanced exits are ignored).
  void exit(const KernelMetrics& now);

  /// Closes any regions left open by the kernel (defensive; RAII makes this
  /// a no-op) using the warp's final counters.
  void finalize(const KernelMetrics& final_metrics);

  [[nodiscard]] const std::vector<TraceSpan>& spans() const noexcept {
    return spans_;
  }
  /// Self metrics per region in first-entered order (no unattributed entry —
  /// the Profiler derives it from the warp total).
  [[nodiscard]] const std::vector<RegionStats>& regions() const noexcept {
    return regions_;
  }
  /// Sum of the *inclusive* metrics of all top-level regions; warp total
  /// minus this is the warp's unattributed work.
  [[nodiscard]] const KernelMetrics& attributed() const noexcept {
    return top_level_inclusive_;
  }
  [[nodiscard]] std::uint64_t dropped_spans() const noexcept {
    return dropped_;
  }

 private:
  struct OpenRegion {
    const char* name;
    KernelMetrics at_entry;
    KernelMetrics child_inclusive;  ///< closed nested regions' inclusive sum
    std::uint64_t begin_instructions;
  };

  void close_top(const KernelMetrics& now);
  RegionStats& stats_for(const char* name);

  std::vector<OpenRegion> stack_;
  std::vector<TraceSpan> spans_;
  std::vector<RegionStats> regions_;
  KernelMetrics top_level_inclusive_;
  std::uint64_t dropped_ = 0;
  std::size_t span_capacity_ = 8192;
};

/// Everything recorded about one kernel launch.
struct KernelRecord {
  std::string kernel;
  std::uint64_t launch_index = 0;
  std::size_t num_warps = 0;
  /// Host threads the launch actually used (1 for the serial loop).  Host
  /// execution detail — excluded from the determinism contract.
  unsigned worker_threads = 0;
  /// Host wall-clock seconds of the launch (simulator speed, not modeled
  /// device time).  Host execution detail like worker_threads.
  double wall_seconds = 0.0;

  KernelMetrics total;
  std::vector<KernelMetrics> per_warp;
  /// Launch-aggregate self metrics per region, first-seen (warp-ascending)
  /// order, "(unattributed)" last.  Sums to `total`.
  std::vector<RegionStats> regions;
  /// Per-warp attribution: warp_regions[w] sums to per_warp[w].
  std::vector<std::vector<RegionStats>> warp_regions;
  /// Per-warp region timelines for the Chrome trace.
  std::vector<std::vector<TraceSpan>> warp_spans;
  std::uint64_t dropped_spans = 0;

  // Cost-model breakdown of `total` (the roofline the modeled seconds max
  // over): which side bounds the kernel and by how much.
  double instruction_seconds = 0.0;
  double memory_seconds = 0.0;
  double kernel_seconds = 0.0;
  bool memory_bound = false;
};

/// Collects KernelRecords from every launch of the Devices it is attached to
/// (Device::set_profiler) and exports them.  Not thread-safe: attach to
/// devices driven from one host thread (launch internals may still use the
/// parallel executor — per-warp collection handles that).
class Profiler {
 public:
  explicit Profiler(CostModel model = c2075_model()) noexcept
      : model_(model) {}

  /// Span cap handed to every warp of subsequent launches (timeline only;
  /// region stats stay exact).
  void set_max_spans_per_warp(std::size_t n) noexcept { max_spans_ = n; }
  [[nodiscard]] std::size_t max_spans_per_warp() const noexcept {
    return max_spans_;
  }

  /// When off, exports write wall_seconds as 0 and worker_threads as 0 — the
  /// only two host-execution fields — making whole exports byte-comparable
  /// across executor thread counts.
  void set_include_host_info(bool on) noexcept { include_host_info_ = on; }
  [[nodiscard]] bool include_host_info() const noexcept {
    return include_host_info_;
  }

  [[nodiscard]] const CostModel& cost_model() const noexcept { return model_; }

  /// Called by Device::launch after a completed (non-aborted) launch.
  void record_launch(const char* kernel_name, unsigned worker_threads,
                     double wall_seconds, std::vector<KernelMetrics> per_warp,
                     std::vector<WarpProfile> profiles,
                     const KernelMetrics& total);

  [[nodiscard]] const std::vector<KernelRecord>& records() const noexcept {
    return records_;
  }
  void clear() noexcept { records_.clear(); }

  /// Copies every record of `other` into this profiler, prepending
  /// `kernel_prefix` to the kernel names and renumbering launch_index to
  /// continue this profiler's sequence.  The multi-device aggregation hook:
  /// each DeviceShard records into its own profiler (Profiler is not
  /// thread-safe), and the serving layer absorbs them into one report with
  /// "shard0/", "shard1/", ... prefixes after the fan-out joins.
  void absorb(const Profiler& other, const std::string& kernel_prefix);

  /// Machine-readable JSON report: one object per launch with metrics,
  /// derived ratios, cost breakdown and per-region attribution.
  void write_report(std::ostream& os) const;
  /// Chrome trace_event JSON (chrome://tracing / Perfetto): pid = launch,
  /// tid = warp, ts/dur = warp instruction counts.
  void write_trace(std::ostream& os) const;
  /// Flat CSV: one row per (launch, region).
  void write_regions_csv(std::ostream& os) const;

  /// Writes each non-empty path (report / trace / regions CSV); throws
  /// PreconditionError when a file cannot be opened.
  void write_files(const std::string& report_path,
                   const std::string& trace_path,
                   const std::string& csv_path) const;

 private:
  CostModel model_;
  std::vector<KernelRecord> records_;
  std::size_t max_spans_ = 8192;
  bool include_host_info_ = true;
};

}  // namespace gpuksel::simt
