// Async admission scheduler in front of the sharded engine.
//
// A single worker thread serves requests in FIFO order off a bounded
// admission queue; ShardedKnn is single-request-at-a-time, and one worker
// keeps every device-side outcome deterministic (the parallelism lives
// below, in the per-shard fan-out and each device's warp executor).
//
// Backpressure: submit() blocks while the queue is full (bounded admission),
// try_submit() returns nullopt instead.  Deadlines: a request whose deadline
// has passed when the worker dequeues it is answered kTimedOut without
// touching the engine — the admission-control semantic (drop stale work at
// the head of the line) rather than a mid-flight abort, which the simulator
// cannot do and a real device could not either.  pause()/resume() gate the
// worker for deterministic tests: a paused scheduler admits (and times out)
// but does not serve.  shutdown() drains the queue — even while paused —
// fails any submitter still blocked on admission, then joins the worker.
#pragma once

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <future>
#include <mutex>
#include <optional>
#include <string>
#include <thread>

#include "serve/sharded_knn.hpp"

namespace gpuksel::serve {

enum class RequestStatus {
  kOk,
  kTimedOut,  ///< deadline passed before the request reached the engine
  kFailed,    ///< engine threw (fault policy exhausted, bad arguments)
};

struct ServeResponse {
  RequestStatus status = RequestStatus::kOk;
  ShardedResult result;  ///< populated only for kOk
  std::string error;     ///< populated only for kFailed
};

struct SchedulerOptions {
  /// Admission-queue bound: submit() blocks (and try_submit() refuses) while
  /// this many requests are already waiting.
  std::size_t queue_capacity = 16;
};

class Scheduler {
 public:
  /// The engine outlives the scheduler (not owned).
  explicit Scheduler(ShardedKnn& engine, SchedulerOptions options = {});
  ~Scheduler();

  Scheduler(const Scheduler&) = delete;
  Scheduler& operator=(const Scheduler&) = delete;

  /// "No deadline" sentinel for submit()'s timeout.
  static constexpr std::chrono::nanoseconds kNoDeadline =
      std::chrono::nanoseconds::max();

  /// Enqueues a request, blocking while the queue is full; the future
  /// resolves when the worker has served (or expired, or failed) it.  After
  /// shutdown() the future resolves immediately as kFailed.
  [[nodiscard]] std::future<ServeResponse> submit(
      knn::Dataset queries, std::uint32_t k,
      std::chrono::nanoseconds timeout = kNoDeadline);

  /// Non-blocking submit: nullopt when the queue is full.
  [[nodiscard]] std::optional<std::future<ServeResponse>> try_submit(
      knn::Dataset queries, std::uint32_t k,
      std::chrono::nanoseconds timeout = kNoDeadline);

  /// Stops the worker from dequeuing (admission continues); deterministic
  /// test hook for backpressure and deadline behaviour.
  void pause();
  void resume();

  /// Requests waiting in the admission queue (not the one being served).
  [[nodiscard]] std::size_t pending() const;

  /// Drains the queue (deadlines still apply), unblocks and fails waiting
  /// submitters, joins the worker.  Idempotent; the destructor calls it.
  void shutdown();

 private:
  struct Request {
    knn::Dataset queries;
    std::uint32_t k = 0;
    bool has_deadline = false;
    std::chrono::steady_clock::time_point deadline;
    std::promise<ServeResponse> promise;
  };

  [[nodiscard]] Request make_request(knn::Dataset queries, std::uint32_t k,
                                     std::chrono::nanoseconds timeout) const;
  void worker_loop();
  [[nodiscard]] ServeResponse serve_one(Request& req);

  ShardedKnn& engine_;
  SchedulerOptions options_;
  mutable std::mutex mu_;
  std::condition_variable work_cv_;   ///< worker waits for work / shutdown
  std::condition_variable space_cv_;  ///< submitters wait for queue space
  std::deque<Request> queue_;
  bool paused_ = false;
  bool stopping_ = false;
  bool joined_ = false;
  std::thread worker_;
};

}  // namespace gpuksel::serve
