// Async admission scheduler in front of the sharded engine.
//
// A single worker thread serves requests in FIFO order off a bounded
// admission queue; ShardedKnn is single-request-at-a-time, and one worker
// keeps every device-side outcome deterministic (the parallelism lives
// below, in the per-shard fan-out and each device's warp executor).
//
// Backpressure and overload: with the default kBlock policy submit() blocks
// while the queue is full (bounded admission) and try_submit() returns
// nullopt.  kRejectNewest answers an immediate kShed instead of blocking;
// kShedOldestExpired first sweeps already-expired requests out of the queue
// (completing them kTimedOut) to make room, and sheds the newest only when
// none were expired.  SchedulerCounters expose the full admission/outcome
// partition: submitted == admitted + rejected, and every admitted request
// ends in exactly one of served_ok / timed_out_* / failed / shed_expired.
//
// Deadlines: a request whose deadline has passed when the worker dequeues it
// is answered kTimedOut without touching the engine — the admission-control
// semantic (drop stale work at the head of the line) rather than a
// mid-flight abort, which the simulator cannot do and a real device could
// not either.  The worker also propagates the remaining deadline budget into
// the engine (ShardedKnn::search's deadline parameter, which lets shards
// skip retries the budget cannot cover) and re-checks the deadline after the
// engine returns: a request that expired *while being served* reports
// kTimedOut with the partial result and its stats still attached
// (served == true).
//
// pause()/resume() gate the worker for deterministic tests: a paused
// scheduler admits (and times out) but does not serve.  shutdown() drains
// the queue — even while paused — fails any submitter still blocked on
// admission, then joins the worker.
#pragma once

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <future>
#include <mutex>
#include <optional>
#include <string>
#include <thread>

#include "serve/sharded_knn.hpp"

namespace gpuksel::serve {

enum class RequestStatus {
  kOk,
  kTimedOut,  ///< deadline passed before or while the request was served
  kFailed,    ///< engine threw (fault policy exhausted, bad arguments)
  kShed,      ///< dropped by the overload policy without reaching the queue
};

struct ServeResponse {
  RequestStatus status = RequestStatus::kOk;
  /// Populated whenever the engine ran (kOk, and kTimedOut detected after
  /// serving — the partial stats are still attached).
  ShardedResult result;
  /// True when the engine actually served the request (result is valid).
  bool served = false;
  std::string error;  ///< populated for kFailed / kTimedOut / kShed
};

/// What to do when a request arrives and the admission queue is full.
enum class OverloadPolicy {
  kBlock,             ///< submit() blocks until space (try_submit refuses)
  kRejectNewest,      ///< answer the new request kShed immediately
  kShedOldestExpired, ///< sweep expired queue entries first, else reject
};

struct SchedulerOptions {
  /// Admission-queue bound: the overload policy engages while this many
  /// requests are already waiting.
  std::size_t queue_capacity = 16;
  OverloadPolicy overload = OverloadPolicy::kBlock;
};

/// Cumulative admission/outcome counters.  Partition invariants (stable
/// whenever no request is mid-flight):
///   submitted == admitted + rejected
///   admitted == served_ok + timed_out_at_dequeue + timed_out_after_serve
///               + failed + shed_expired + pending (+ the in-flight request)
///   degraded <= served_ok
struct SchedulerCounters {
  std::uint64_t submitted = 0;  ///< every submit()/try_submit() call
  std::uint64_t admitted = 0;   ///< entered the queue
  std::uint64_t rejected = 0;   ///< refused admission (kShed / nullopt / shutdown)
  std::uint64_t shed_expired = 0;  ///< swept from the queue already expired
  std::uint64_t served_ok = 0;
  std::uint64_t timed_out_at_dequeue = 0;   ///< expired before the engine ran
  std::uint64_t timed_out_after_serve = 0;  ///< expired while being served
  std::uint64_t failed = 0;
  std::uint64_t degraded = 0;  ///< served_ok responses with degraded results
  std::uint64_t backpressure_waits = 0;  ///< kBlock submits that had to park
  std::uint64_t pending = 0;  ///< queue depth at snapshot time
};

class Scheduler {
 public:
  /// The engine outlives the scheduler (not owned).
  explicit Scheduler(ShardedKnn& engine, SchedulerOptions options = {});
  ~Scheduler();

  Scheduler(const Scheduler&) = delete;
  Scheduler& operator=(const Scheduler&) = delete;

  /// "No deadline" sentinel for submit()'s timeout.
  static constexpr std::chrono::nanoseconds kNoDeadline =
      std::chrono::nanoseconds::max();

  /// Enqueues a request; the future resolves when the worker has served (or
  /// expired, or failed) it.  Under kBlock this blocks while the queue is
  /// full; under the shedding policies a full queue resolves the future
  /// immediately as kShed instead.  After shutdown() the future resolves
  /// immediately as kFailed.
  [[nodiscard]] std::future<ServeResponse> submit(
      knn::Dataset queries, std::uint32_t k,
      std::chrono::nanoseconds timeout = kNoDeadline);

  /// Non-blocking submit: nullopt when the queue is full (after the
  /// kShedOldestExpired sweep, when that policy is active).
  [[nodiscard]] std::optional<std::future<ServeResponse>> try_submit(
      knn::Dataset queries, std::uint32_t k,
      std::chrono::nanoseconds timeout = kNoDeadline);

  /// Stops the worker from dequeuing (admission continues); deterministic
  /// test hook for backpressure and deadline behaviour.
  void pause();
  void resume();

  /// Requests waiting in the admission queue (not the one being served).
  [[nodiscard]] std::size_t pending() const;

  /// Snapshot of the cumulative admission/outcome counters.
  [[nodiscard]] SchedulerCounters counters() const;

  /// Drains the queue (deadlines still apply), unblocks and fails waiting
  /// submitters, joins the worker.  Idempotent; the destructor calls it.
  void shutdown();

 private:
  struct Request {
    knn::Dataset queries;
    std::uint32_t k = 0;
    bool has_deadline = false;
    std::chrono::steady_clock::time_point deadline;
    std::promise<ServeResponse> promise;
  };

  [[nodiscard]] Request make_request(knn::Dataset queries, std::uint32_t k,
                                     std::chrono::nanoseconds timeout) const;
  /// Completes queued requests whose deadline has already passed (kTimedOut)
  /// to make room; returns how many were shed.  Caller holds mu_.
  std::size_t shed_expired_locked();
  void worker_loop();
  [[nodiscard]] ServeResponse serve_one(Request& req);

  ShardedKnn& engine_;
  SchedulerOptions options_;
  mutable std::mutex mu_;
  std::condition_variable work_cv_;   ///< worker waits for work / shutdown
  std::condition_variable space_cv_;  ///< submitters wait for queue space
  std::deque<Request> queue_;
  SchedulerCounters counters_;
  bool paused_ = false;
  bool stopping_ = false;
  bool joined_ = false;
  std::thread worker_;
};

}  // namespace gpuksel::serve
