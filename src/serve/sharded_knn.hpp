// Multi-device sharded k-NN front end.
//
// ShardedKnn cuts the reference set into contiguous shards (remainder rows
// spread over the first shards), gives each to a DeviceShard with its own
// simt::Device, fans every query batch out to all shards — on one host
// thread per shard when parallel_fanout is on; each Device's WarpExecutor is
// internally synchronized, so per-request fan-out threads are safe — and
// reduces the per-shard partial top-k lists on a dedicated merge device with
// the shard_merge kernel.  Results are bit-identical to a single-device
// BatchedKnn over the whole set (see shard_merge.hpp for the exactness
// argument), including when a faulty shard is excluded and recomputed on the
// host.
//
// Resilience: each DeviceShard carries a ShardHealth state machine
// (shard_health.hpp) — persistent faulters are quarantined (host-served, no
// GPU retries) and re-admitted via probes.  search() takes an optional
// deadline that DeviceShard uses to skip retries the remaining budget cannot
// cover.  Fault-path cost is modeled explicitly: wasted_seconds (device work
// aborted attempts actually executed), plus a penalty model charging each
// failed attempt a full clean-attempt estimate (faults surface at the
// post-attempt sync) and each host recompute degraded_host_penalty clean
// attempts; a request's modeled latency is max over shard
// (modeled + wasted + penalty) seconds plus the merge.
//
// Observability: per-request ShardStats ride on every ShardedResult;
// cumulative per-shard service counters plus each device's KernelMetrics and
// transfer totals are exported by write_shard_report() as the
// "gpuksel.shards.v1" JSON schema, where the per-shard metrics and the merge
// metrics partition the report's totals exactly, and per-shard useful +
// wasted metrics partition that shard's device cumulative counters (CI
// checks both).  Each shard's report entry carries a "health" section whose
// served-by-state counters partition its request count.  Attach per-device
// profilers with attach_profilers() and fold the per-shard records into one
// report via drain_profiles() ("shard0/", ..., "merge/" kernel prefixes).
//
// Thread-safety: one request at a time — drive ShardedKnn from a single
// thread (the Scheduler's worker does exactly that).  The fan-out threads
// are internal per-request workers, not concurrent requests.
#pragma once

#include <chrono>
#include <cstdint>
#include <iosfwd>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "serve/device_shard.hpp"
#include "simt/profiler.hpp"

namespace gpuksel::serve {

struct SchedulerCounters;  // scheduler.hpp; optional report section

struct ShardedKnnOptions {
  /// Devices to shard the reference set over; must be in [1, rows].
  std::uint32_t num_shards = 2;
  /// Per-shard engine configuration (tile size, queue config, NaN policy,
  /// cost model).  fallback_to_host is ignored — shard fault policy is
  /// retry-once-then-exclude, owned by DeviceShard.
  knn::BatchedKnnOptions batch;
  /// Serve shards on one host thread each (the multi-device model); off =
  /// sequential fan-out, same results.
  bool parallel_fanout = true;
  /// When true a shard whose retry also faulted is excluded for the request
  /// and its partition recomputed on the host (degraded service); when false
  /// the second fault fails the whole request.
  bool exclude_faulty_shards = true;
  /// Per-shard health state machine (quarantine + probe re-admission).
  /// Quarantined service is host recompute, so health is forced off when
  /// exclude_faulty_shards is false.
  HealthOptions health;
  /// Modeled cost of a host-recomputed shard partition, as a multiple of a
  /// clean GPU attempt over the same rows (the host path has no device
  /// metrics, so its cost is charged via this penalty).
  double degraded_host_penalty = 2.0;
  /// Host worker threads per simulated device (0 = device default).
  unsigned worker_threads = 0;
};

/// Result of one sharded request.
struct ShardedResult {
  /// Per query: the min(k, total rows) nearest (dist, global index),
  /// ascending — byte-identical to the single-device answer.
  std::vector<std::vector<Neighbor>> neighbors;
  /// Per-shard outcome of this request, indexed by shard id.
  std::vector<ShardStats> shards;
  simt::KernelMetrics merge_metrics;
  double merge_seconds = 0.0;
  /// Shards run concurrently, the merge after all of them: the request's
  /// modeled latency is max over shard (modeled + wasted + penalty) seconds
  /// plus the merge.
  double modeled_seconds = 0.0;
  /// True when at least one shard was excluded (host-recomputed).
  bool degraded = false;
};

/// Cumulative per-shard service counters (since construction).  Partition
/// invariant: useful_metrics + wasted_metrics equals the shard device's
/// cumulative KernelMetrics exactly (every launch belongs to exactly one
/// attempt, and every attempt is either the successful one or a recorded
/// failure).
struct ShardTotals {
  std::uint64_t requests = 0;
  std::uint64_t retries = 0;
  std::uint64_t exclusions = 0;
  std::uint64_t faults = 0;
  std::uint64_t failed_attempts = 0;
  std::uint64_t budget_skipped_retries = 0;
  double modeled_seconds = 0.0;
  double wasted_seconds = 0.0;
  double penalty_seconds = 0.0;
  simt::KernelMetrics useful_metrics;
  simt::KernelMetrics wasted_metrics;
};

class ShardedKnn {
 public:
  explicit ShardedKnn(knn::Dataset refs, ShardedKnnOptions options = {});

  [[nodiscard]] std::uint32_t size() const noexcept { return size_; }
  [[nodiscard]] std::uint32_t dim() const noexcept { return dim_; }
  [[nodiscard]] std::uint32_t num_shards() const noexcept {
    return static_cast<std::uint32_t>(shards_.size());
  }
  [[nodiscard]] const ShardedKnnOptions& options() const noexcept {
    return options_;
  }
  [[nodiscard]] DeviceShard& shard(std::uint32_t i) { return *shards_[i]; }
  [[nodiscard]] const DeviceShard& shard(std::uint32_t i) const {
    return *shards_[i];
  }
  [[nodiscard]] simt::Device& merge_device() noexcept { return merge_device_; }

  /// Serves one query batch across all shards and merges the partials.
  /// `deadline` is the request's absolute wall deadline (budget
  /// propagation): shards skip the GPU retry when the remaining budget
  /// cannot cover a second attempt.  Throws SimtFaultError when a shard
  /// fails beyond the fault policy (lowest faulting shard id wins under
  /// parallel fan-out, matching the sequential order); cumulative counters
  /// still absorb the failed request's stats first.
  [[nodiscard]] ShardedResult search(
      const knn::Dataset& queries, std::uint32_t k,
      std::optional<std::chrono::steady_clock::time_point> deadline =
          std::nullopt);

  [[nodiscard]] std::uint64_t requests() const noexcept { return requests_; }
  [[nodiscard]] std::uint64_t degraded_requests() const noexcept {
    return degraded_requests_;
  }
  [[nodiscard]] const std::vector<ShardTotals>& totals() const noexcept {
    return totals_;
  }

  /// Gives every shard device (and the merge device) its own Profiler.
  /// Idempotent; call before serving to capture every launch.
  void attach_profilers();
  /// Folds the per-device profiles into `sink` with "<prefix>shard<i>/" and
  /// "<prefix>merge/" kernel-name prefixes, then clears the local profilers.
  void drain_profiles(simt::Profiler& sink, const std::string& prefix = "");

  /// Writes the "gpuksel.shards.v1" JSON report: per-shard partition bounds,
  /// cumulative service counters, fault-path cost (wasted/penalty seconds,
  /// useful + wasted metrics partitioning the device's cumulative counters),
  /// a per-shard health section, device KernelMetrics and transfer bytes,
  /// the merge device's share, and totals that the per-shard + merge metrics
  /// partition exactly.  When `scheduler` is non-null its counters are
  /// emitted as a "scheduler" section (shed/timeout observability).
  void write_shard_report(std::ostream& os,
                          const SchedulerCounters* scheduler = nullptr) const;

 private:
  ShardedKnnOptions options_;
  std::uint32_t size_ = 0;
  std::uint32_t dim_ = 0;
  std::vector<std::unique_ptr<DeviceShard>> shards_;
  simt::Device merge_device_;
  /// One profiler per shard plus one for the merge device, heap-held for
  /// pointer stability (Device keeps a raw Profiler*).
  std::vector<std::unique_ptr<simt::Profiler>> profilers_;
  std::vector<ShardTotals> totals_;
  std::uint64_t requests_ = 0;
  std::uint64_t degraded_requests_ = 0;
  double merge_seconds_total_ = 0.0;
};

}  // namespace gpuksel::serve
