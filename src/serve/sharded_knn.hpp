// Multi-device sharded k-NN front end.
//
// ShardedKnn cuts the reference set into contiguous shards (remainder rows
// spread over the first shards), gives each to a DeviceShard with its own
// simt::Device, fans every query batch out to all shards — on one host
// thread per shard when parallel_fanout is on; each Device's WarpExecutor is
// internally synchronized, so per-request fan-out threads are safe — and
// reduces the per-shard partial top-k lists on a dedicated merge device with
// the shard_merge kernel.  Results are bit-identical to a single-device
// BatchedKnn over the whole set (see shard_merge.hpp for the exactness
// argument), including when a faulty shard is excluded and recomputed on the
// host.
//
// Index types: with IndexType::kFlat each shard full-scans a contiguous row
// slice.  With IndexType::kIvf the constructor trains one global IvfKnn on
// the merge device (seeded, deterministic), cuts the inverted lists into
// contiguous ranges balanced by cumulative row count, and gives each shard
// an IvfKnn::shard_view — every shard keeps the full centroid set, so each
// query's probe selection is identical on every shard and the shards'
// scanned rows partition the globally probed rows exactly.  The merged
// result is therefore byte-identical to the single-device IvfKnn answer at
// the same nprobe (and, at nprobe == nlist, to the flat answer).  The fault
// policy, health machine, and deadline budget are index-type agnostic: a
// degraded IVF shard is host-served by IvfKnn::search_host, the bit-exact
// scalar mirror.
//
// Resilience: each DeviceShard carries a ShardHealth state machine
// (shard_health.hpp) — persistent faulters are quarantined (host-served, no
// GPU retries) and re-admitted via probes.  search() takes an optional
// deadline that DeviceShard uses to skip retries the remaining budget cannot
// cover.  Fault-path cost is modeled explicitly: wasted_seconds (device work
// aborted attempts actually executed), plus a penalty model charging each
// failed attempt a full clean-attempt estimate (faults surface at the
// post-attempt sync) and each host recompute degraded_host_penalty clean
// attempts; a request's modeled latency is max over shard
// (modeled + wasted + penalty) seconds plus the merge.
//
// Observability: per-request ShardStats ride on every ShardedResult;
// cumulative per-shard service counters plus each device's KernelMetrics and
// transfer totals are exported by write_shard_report() as the
// "gpuksel.shards.v1" JSON schema, where the per-shard metrics and the merge
// metrics partition the report's totals exactly, and per-shard useful +
// wasted metrics partition that shard's device cumulative counters (CI
// checks both).  Each shard's report entry carries a "health" section whose
// served-by-state counters partition its request count.  Attach per-device
// profilers with attach_profilers() and fold the per-shard records into one
// report via drain_profiles() ("shard0/", ..., "merge/" kernel prefixes).
//
// Thread-safety: one request at a time — drive ShardedKnn from a single
// thread (the Scheduler's worker does exactly that).  The fan-out threads
// are internal per-request workers, not concurrent requests.
#pragma once

#include <chrono>
#include <cstdint>
#include <iosfwd>
#include <memory>
#include <optional>
#include <span>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "knn/ivf.hpp"
#include "serve/device_shard.hpp"
#include "simt/profiler.hpp"

namespace gpuksel::serve {

struct SchedulerCounters;  // scheduler.hpp; optional report section

/// What each shard serves: a full-scan row slice, a pruned IVF list range,
/// or a mutable row slice accepting streaming upserts.
enum class IndexType {
  kFlat,  ///< contiguous row slices, exact full scan per shard
  kIvf,   ///< contiguous inverted-list ranges of one globally trained index
  /// Contiguous *initial* row slices wrapped in MutableKnn: upsert()/
  /// remove() route by id (initial ids by the contiguous cut, new ids
  /// stick to the shard that first received them), answers carry global
  /// ids, and each shard compacts itself on its private device when its
  /// delta/tombstone thresholds trip.  The base engine is flat (checked):
  /// per-shard IVF training over a slice would not reproduce the global
  /// index, breaking the exactness contract sharded serving is built on.
  kMutable,
};

[[nodiscard]] const char* index_type_name(IndexType type) noexcept;

struct ShardedKnnOptions {
  /// Devices to shard the reference set over; must be in [1, rows].
  std::uint32_t num_shards = 2;
  /// How the reference set is indexed and partitioned across shards.
  IndexType index_type = IndexType::kFlat;
  /// IVF quantizer parameters (kIvf only).  nprobe is the serving-time
  /// recall/qps knob; set_nprobe() adjusts it after construction.
  knn::IvfParams ivf;
  /// Mutable-engine configuration (kMutable only): compaction thresholds and
  /// the base engine type, which must be MutableBase::kFlat here.  Its
  /// embedded `batch` options are ignored — the shared `batch` below drives
  /// every shard engine uniformly.
  knn::MutableKnnOptions mutable_index;
  /// Per-shard engine configuration (tile size, queue config, NaN policy,
  /// cost model).  fallback_to_host is ignored — shard fault policy is
  /// retry-once-then-exclude, owned by DeviceShard.
  knn::BatchedKnnOptions batch;
  /// Serve shards on one host thread each (the multi-device model); off =
  /// sequential fan-out, same results.
  bool parallel_fanout = true;
  /// When true a shard whose retry also faulted is excluded for the request
  /// and its partition recomputed on the host (degraded service); when false
  /// the second fault fails the whole request.
  bool exclude_faulty_shards = true;
  /// Per-shard health state machine (quarantine + probe re-admission).
  /// Quarantined service is host recompute, so health is forced off when
  /// exclude_faulty_shards is false.
  HealthOptions health;
  /// Modeled cost of a host-recomputed shard partition, as a multiple of a
  /// clean GPU attempt over the same rows (the host path has no device
  /// metrics, so its cost is charged via this penalty).
  double degraded_host_penalty = 2.0;
  /// Host worker threads per simulated device (0 = device default).
  unsigned worker_threads = 0;
};

/// Result of one sharded request.
struct ShardedResult {
  /// Per query: the min(k, total rows) nearest (dist, global index),
  /// ascending — byte-identical to the single-device answer.
  std::vector<std::vector<Neighbor>> neighbors;
  /// Per-shard outcome of this request, indexed by shard id.
  std::vector<ShardStats> shards;
  simt::KernelMetrics merge_metrics;
  double merge_seconds = 0.0;
  /// Shards run concurrently, the merge after all of them: the request's
  /// modeled latency is max over shard (modeled + wasted + penalty) seconds
  /// plus the merge.
  double modeled_seconds = 0.0;
  /// True when at least one shard was excluded (host-recomputed).
  bool degraded = false;
};

/// Cumulative per-shard service counters (since construction).  Partition
/// invariant: useful_metrics + wasted_metrics equals the shard device's
/// cumulative KernelMetrics exactly (every launch belongs to exactly one
/// attempt, and every attempt is either the successful one or a recorded
/// failure).
struct ShardTotals {
  std::uint64_t requests = 0;
  std::uint64_t retries = 0;
  std::uint64_t exclusions = 0;
  std::uint64_t faults = 0;
  std::uint64_t failed_attempts = 0;
  std::uint64_t budget_skipped_retries = 0;
  double modeled_seconds = 0.0;
  double wasted_seconds = 0.0;
  double penalty_seconds = 0.0;
  simt::KernelMetrics useful_metrics;
  simt::KernelMetrics wasted_metrics;
};

class ShardedKnn {
 public:
  explicit ShardedKnn(knn::Dataset refs, ShardedKnnOptions options = {});

  [[nodiscard]] std::uint32_t size() const noexcept { return size_; }
  [[nodiscard]] std::uint32_t dim() const noexcept { return dim_; }
  [[nodiscard]] std::uint32_t num_shards() const noexcept {
    return static_cast<std::uint32_t>(shards_.size());
  }
  [[nodiscard]] const ShardedKnnOptions& options() const noexcept {
    return options_;
  }
  [[nodiscard]] DeviceShard& shard(std::uint32_t i) { return *shards_[i]; }
  [[nodiscard]] const DeviceShard& shard(std::uint32_t i) const {
    return *shards_[i];
  }
  [[nodiscard]] simt::Device& merge_device() noexcept { return merge_device_; }

  [[nodiscard]] IndexType index_type() const noexcept {
    return options_.index_type;
  }
  /// Effective list count of the global IVF index (0 for flat).
  [[nodiscard]] std::uint32_t ivf_nlist() const noexcept { return ivf_nlist_; }
  /// Current probe width (clamped to nlist; 0 for flat).
  [[nodiscard]] std::uint32_t ivf_nprobe() const noexcept {
    return ivf_nprobe_;
  }
  /// List range shard i owns (kIvf only): [first, second) of the global
  /// inverted lists.
  [[nodiscard]] std::pair<std::uint32_t, std::uint32_t> shard_lists(
      std::uint32_t i) const {
    return {list_cut_[i], list_cut_[i + 1]};
  }
  /// Retunes the recall/qps knob on every IVF shard (kIvf only; clamped to
  /// nlist).  The next request probes the new width.
  void set_nprobe(std::uint32_t nprobe);

  /// Rows currently live across all shards (== size() until a kMutable
  /// engine mutates).
  [[nodiscard]] std::uint32_t live_rows() const noexcept;

  /// Streaming mutations (kMutable only).  Ids are global: the initial rows
  /// carry ids 0 .. size() - 1 (their original row indices), insert() mints
  /// fresh ids above that.  Routing is deterministic: an initial id goes to
  /// the shard whose slice held it, a minted id sticks forever to the shard
  /// that first received it (least-live shard at mint time, lowest id on
  /// ties), so one id can never be live on two shards.  Each mutation may
  /// trigger the owning shard's synchronous threshold compaction.
  std::uint32_t insert(std::span<const float> row);
  void upsert(std::uint32_t id, std::span<const float> row);
  bool remove(std::uint32_t id);

  /// Serves one query batch across all shards and merges the partials.
  /// `deadline` is the request's absolute wall deadline (budget
  /// propagation): shards skip the GPU retry when the remaining budget
  /// cannot cover a second attempt.  Throws SimtFaultError when a shard
  /// fails beyond the fault policy (lowest faulting shard id wins under
  /// parallel fan-out, matching the sequential order); cumulative counters
  /// still absorb the failed request's stats first.
  [[nodiscard]] ShardedResult search(
      const knn::Dataset& queries, std::uint32_t k,
      std::optional<std::chrono::steady_clock::time_point> deadline =
          std::nullopt);

  [[nodiscard]] std::uint64_t requests() const noexcept { return requests_; }
  [[nodiscard]] std::uint64_t degraded_requests() const noexcept {
    return degraded_requests_;
  }
  [[nodiscard]] const std::vector<ShardTotals>& totals() const noexcept {
    return totals_;
  }

  /// Gives every shard device (and the merge device) its own Profiler.
  /// Idempotent; call before serving to capture every launch.
  void attach_profilers();
  /// Folds the per-device profiles into `sink` with "<prefix>shard<i>/" and
  /// "<prefix>merge/" kernel-name prefixes, then clears the local profilers.
  void drain_profiles(simt::Profiler& sink, const std::string& prefix = "");

  /// Writes the "gpuksel.shards.v1" JSON report: per-shard partition bounds,
  /// cumulative service counters, fault-path cost (wasted/penalty seconds,
  /// useful + wasted metrics partitioning the device's cumulative counters),
  /// a per-shard health section, device KernelMetrics and transfer bytes,
  /// the merge device's share, and totals that the per-shard + merge metrics
  /// partition exactly.  When `scheduler` is non-null its counters are
  /// emitted as a "scheduler" section (shed/timeout observability).
  void write_shard_report(std::ostream& os,
                          const SchedulerCounters* scheduler = nullptr) const;

 private:
  /// Owning shard for a global id (kMutable routing; see upsert()).
  [[nodiscard]] std::uint32_t shard_for_id(std::uint32_t id) const;

  ShardedKnnOptions options_;
  std::uint32_t size_ = 0;
  std::uint32_t dim_ = 0;
  std::uint32_t ivf_nlist_ = 0;   ///< effective global nlist (kIvf only)
  std::uint32_t ivf_nprobe_ = 0;  ///< current probe width (kIvf only)
  /// List-range boundaries (num_shards + 1 entries, kIvf only): shard s owns
  /// global lists [list_cut_[s], list_cut_[s + 1]).
  std::vector<std::uint32_t> list_cut_;
  std::vector<std::unique_ptr<DeviceShard>> shards_;
  simt::Device merge_device_;
  /// One profiler per shard plus one for the merge device, heap-held for
  /// pointer stability (Device keeps a raw Profiler*).
  std::vector<std::unique_ptr<simt::Profiler>> profilers_;
  std::vector<ShardTotals> totals_;
  std::uint64_t requests_ = 0;
  std::uint64_t degraded_requests_ = 0;
  double merge_seconds_total_ = 0.0;
  /// kMutable routing state: the initial contiguous cut (num_shards + 1
  /// boundaries over ids [0, size_)), the next fresh id, and the sticky
  /// shard assignment of every minted id.
  std::vector<std::uint32_t> initial_cut_;
  std::uint32_t next_id_ = 0;
  std::unordered_map<std::uint32_t, std::uint32_t> minted_id_shard_;
};

}  // namespace gpuksel::serve
