#include "serve/device_shard.hpp"

#include <exception>
#include <utility>

#include "util/check.hpp"

namespace gpuksel::serve {

namespace {

knn::BatchedKnnOptions shard_options(knn::BatchedKnnOptions options) {
  options.fallback_to_host = false;
  return options;
}

}  // namespace

DeviceShard::DeviceShard(std::uint32_t id, std::uint32_t begin,
                         knn::Dataset slice, knn::BatchedKnnOptions options,
                         HealthOptions health)
    : id_(id),
      begin_(begin),
      flat_(std::make_unique<knn::BatchedKnn>(std::move(slice),
                                              shard_options(std::move(options)))),
      health_(health) {}

DeviceShard::DeviceShard(std::uint32_t id, std::uint32_t begin,
                         knn::Dataset slice, knn::MutableKnnOptions options,
                         std::uint32_t id_base, HealthOptions health)
    : id_(id), begin_(begin), health_(health) {
  // Same reasoning as the flat constructor: the shard owns the fault policy,
  // so the engine must propagate.
  options.batch.fallback_to_host = false;
  mutable_ = std::make_unique<knn::MutableKnn>(std::move(slice),
                                               std::move(options), id_base);
}

DeviceShard::DeviceShard(std::uint32_t id, knn::IvfKnn engine,
                         HealthOptions health)
    : id_(id), begin_(engine.reordered_begin()), health_(health) {
  // The shard view's options are fixed at construction, so unlike the flat
  // path the silent fallback cannot be forced off here — refuse it instead.
  GPUKSEL_CHECK(!engine.options().batch.fallback_to_host,
                "an IVF DeviceShard needs fallback_to_host off (the shard "
                "owns the fault policy)");
  GPUKSEL_CHECK(engine.trained(),
                "an IVF DeviceShard needs a trained shard view");
  ivf_ = std::make_unique<knn::IvfKnn>(std::move(engine));
}

std::vector<std::vector<Neighbor>> DeviceShard::remap(
    std::vector<std::vector<Neighbor>> neighbors) const {
  if (mutable_ != nullptr) {
    // A mutable engine answers in logical positions; the id table maps them
    // to the globally-unique ids ShardedKnn routes by.
    const std::vector<std::uint32_t>& ids = mutable_->live_ids();
    for (auto& list : neighbors) {
      for (Neighbor& n : list) n.index = ids[n.index];
    }
    return neighbors;
  }
  for (auto& list : neighbors) {
    for (Neighbor& n : list) n.index += begin_;
  }
  return neighbors;
}

void DeviceShard::upsert(std::uint32_t id, std::span<const float> row) {
  GPUKSEL_CHECK(mutable_ != nullptr, "upsert needs a mutable shard");
  mutable_->upsert(id, row);
  (void)mutable_->maybe_compact();
}

bool DeviceShard::remove(std::uint32_t id) {
  GPUKSEL_CHECK(mutable_ != nullptr, "remove needs a mutable shard");
  const bool removed = mutable_->remove(id);
  (void)mutable_->maybe_compact();
  return removed;
}

std::vector<std::vector<Neighbor>> DeviceShard::host_recompute(
    const knn::Dataset& queries, std::uint32_t k) {
  // Same FP op order and tie-breaking as the device pipeline, so a degraded
  // shard's partial list is bit-identical to what a healthy shard would have
  // produced.
  if (mutable_) {
    // The scalar-exact mirror over the live rows, remapped to global ids.
    return remap(mutable_->search_host(queries, k).neighbors);
  }
  if (ivf_) {
    // The scalar mirror of the pruned pipeline; already global row ids.
    return ivf_->search_host(queries, k).neighbors;
  }
  const auto& opts = flat_->options();
  knn::KnnResult res = flat_->host().search(queries, k,
                                            opts.host_fallback_algo,
                                            opts.nan_policy);
  return remap(std::move(res.neighbors));
}

std::vector<std::vector<Neighbor>> DeviceShard::search(
    const knn::Dataset& queries, std::uint32_t k, bool allow_exclusion,
    ShardStats& stats,
    std::optional<std::chrono::steady_clock::time_point> deadline) {
  stats = ShardStats{};
  stats.shard_id = id_;
  const ShardHealth::Plan plan = health_.plan_request();
  stats.health_state = health_.state();
  stats.probe = plan.probe;

  if (!plan.gpu_attempt) {
    // Quarantined: host service only, no GPU work and no retry tax.  The
    // health machine only plans this when exclusion is allowed (see
    // ShardedKnn's constructor, which disables health otherwise).
    stats.quarantine_served = true;
    stats.excluded = true;
    health_.record_outcome(plan, /*faulted=*/false);
    return host_recompute(queries, k);
  }

  const auto attempt = [&] {
    knn::KnnResult res = mutable_ ? mutable_->search(device_, queries, k)
                        : ivf_   ? ivf_->search_gpu(device_, queries, k)
                                 : flat_->search_gpu(device_, queries, k);
    stats.metrics = res.distance_metrics;
    stats.metrics += res.select_metrics;
    stats.modeled_seconds = res.modeled_seconds;
    // The IVF view emits original global row ids already; the flat slice's
    // local indices shift by the partition offset; a mutable shard's logical
    // positions map through its id table.
    return ivf_ ? std::move(res.neighbors) : remap(std::move(res.neighbors));
  };
  // A faulted launch aborts before recording its own metrics, but the
  // attempt's *completed* launches (earlier tiles) did run — the cumulative
  // delta across the attempt is exactly that executed-but-discarded work.
  const auto record_waste = [&](const simt::KernelMetrics& before) {
    const simt::KernelMetrics delta = device_.cumulative() - before;
    stats.wasted_metrics += delta;
    stats.wasted_seconds +=
        batch_options().cost_model.kernel_seconds(delta);
    stats.failed_attempts += 1;
  };
  const auto degrade = [&] {
    stats.excluded = true;
    return host_recompute(queries, k);
  };

  simt::KernelMetrics before = device_.cumulative();
  std::exception_ptr first_error;
  const auto first_start = std::chrono::steady_clock::now();
  try {
    auto out = attempt();
    health_.record_outcome(plan, /*faulted=*/false);
    return out;
  } catch (const SimtFaultError& fault) {
    stats.faults.push_back(fault.record());
    first_error = std::current_exception();
    record_waste(before);
  }
  const auto first_attempt_wall =
      std::chrono::steady_clock::now() - first_start;
  health_.record_outcome(plan, /*faulted=*/true);

  if (plan.probe) {
    // Probes are deliberately low-cost: no retry — re-admission waits for
    // the next probe, and this request degrades to the host path.
    if (!allow_exclusion) std::rethrow_exception(first_error);
    return degrade();
  }
  if (deadline.has_value() &&
      std::chrono::steady_clock::now() + first_attempt_wall > *deadline) {
    // The remaining budget cannot cover a second attempt of the same size:
    // degrade immediately instead of burning the budget on a doomed retry.
    stats.budget_skipped_retry = true;
    if (!allow_exclusion) std::rethrow_exception(first_error);
    return degrade();
  }

  stats.retries = 1;
  before = device_.cumulative();
  try {
    return attempt();
  } catch (const SimtFaultError& fault) {
    stats.faults.push_back(fault.record());
    record_waste(before);
    if (!allow_exclusion) throw;
  }
  // Both GPU attempts faulted: degrade this shard to the host path.
  return degrade();
}

}  // namespace gpuksel::serve
