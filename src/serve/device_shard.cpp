#include "serve/device_shard.hpp"

#include <utility>

#include "util/check.hpp"

namespace gpuksel::serve {

namespace {

knn::BatchedKnnOptions shard_options(knn::BatchedKnnOptions options) {
  options.fallback_to_host = false;
  return options;
}

}  // namespace

DeviceShard::DeviceShard(std::uint32_t id, std::uint32_t begin,
                         knn::Dataset slice, knn::BatchedKnnOptions options)
    : id_(id),
      begin_(begin),
      engine_(std::move(slice), shard_options(std::move(options))) {}

std::vector<std::vector<Neighbor>> DeviceShard::remap(
    std::vector<std::vector<Neighbor>> neighbors) const {
  for (auto& list : neighbors) {
    for (Neighbor& n : list) n.index += begin_;
  }
  return neighbors;
}

std::vector<std::vector<Neighbor>> DeviceShard::search(
    const knn::Dataset& queries, std::uint32_t k, bool allow_exclusion,
    ShardStats& stats) {
  stats = ShardStats{};
  stats.shard_id = id_;
  const auto attempt = [&] {
    knn::KnnResult res = engine_.search_gpu(device_, queries, k);
    stats.metrics = res.distance_metrics;
    stats.metrics += res.select_metrics;
    stats.modeled_seconds = res.modeled_seconds;
    return remap(std::move(res.neighbors));
  };
  try {
    return attempt();
  } catch (const SimtFaultError& fault) {
    stats.faults.push_back(fault.record());
  }
  stats.retries = 1;
  try {
    return attempt();
  } catch (const SimtFaultError& fault) {
    stats.faults.push_back(fault.record());
    if (!allow_exclusion) throw;
  }
  // Both GPU attempts faulted: degrade this shard to the host path.  Same
  // FP op order and tie-breaking as the fused kernel, so the partial list
  // is bit-identical to what a healthy shard would have produced.
  stats.excluded = true;
  const auto& opts = engine_.options();
  knn::KnnResult res =
      engine_.host().search(queries, k, opts.host_fallback_algo,
                            opts.nan_policy);
  return remap(std::move(res.neighbors));
}

}  // namespace gpuksel::serve
