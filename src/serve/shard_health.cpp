#include "serve/shard_health.hpp"

#include <algorithm>

#include "util/check.hpp"

namespace gpuksel::serve {

ShardHealth::ShardHealth(HealthOptions options) : options_(options) {
  GPUKSEL_CHECK(options_.window >= 1, "health window must be >= 1");
  GPUKSEL_CHECK(options_.suspect_faults >= 1,
                "suspect threshold must be >= 1 fault");
  GPUKSEL_CHECK(options_.quarantine_faults >= options_.suspect_faults,
                "quarantine threshold must be >= suspect threshold");
  GPUKSEL_CHECK(options_.quarantine_faults <= options_.window,
                "quarantine threshold cannot exceed the window");
  GPUKSEL_CHECK(options_.probe_interval >= 1, "probe interval must be >= 1");
  GPUKSEL_CHECK(options_.probe_successes >= 1,
                "re-admission needs at least one clean probe");
}

void ShardHealth::transition(HealthState to) {
  if (log_.size() < kMaxLoggedTransitions) {
    log_.push_back(HealthTransition{current_request_, state_, to});
  }
  ++counters_.transitions;
  state_ = to;
}

void ShardHealth::note_quarantined_request() {
  ++episode_requests_;
  ++counters_.quarantined_requests;
  counters_.longest_quarantine =
      std::max(counters_.longest_quarantine, episode_requests_);
}

ShardHealth::Plan ShardHealth::plan_request() {
  current_request_ = counters_.requests++;
  if (!options_.enabled) {
    ++counters_.healthy_served;
    return Plan{/*gpu_attempt=*/true, /*probe=*/false};
  }
  switch (state_) {
    case HealthState::kHealthy:
      ++counters_.healthy_served;
      return Plan{true, false};
    case HealthState::kSuspect:
      ++counters_.suspect_served;
      return Plan{true, false};
    case HealthState::kQuarantined:
      note_quarantined_request();
      if (++since_probe_ >= options_.probe_interval) {
        since_probe_ = 0;
        transition(HealthState::kProbing);
        ++counters_.probes_served;
        return Plan{true, true};
      }
      ++counters_.quarantined_served;
      return Plan{false, false};
    case HealthState::kProbing:
      // Mid-re-admission: keep probing until the streak completes or breaks.
      note_quarantined_request();
      ++counters_.probes_served;
      return Plan{true, true};
  }
  GPUKSEL_CHECK(false, "unreachable health state");
  return Plan{};
}

void ShardHealth::record_outcome(const Plan& plan, bool faulted) {
  if (!options_.enabled) {
    return;
  }
  if (plan.probe) {
    if (faulted) {
      ++counters_.probe_failures;
      probe_streak_ = 0;
      transition(HealthState::kQuarantined);
    } else {
      ++counters_.probe_successes;
      if (++probe_streak_ >= options_.probe_successes) {
        probe_streak_ = 0;
        window_.clear();
        window_faults_ = 0;
        episode_requests_ = 0;
        ++counters_.quarantine_exits;
        transition(HealthState::kHealthy);
      }
      // else: stay kProbing — the next request probes again.
    }
    return;
  }
  if (!plan.gpu_attempt) {
    return;  // host-served while quarantined: no GPU evidence to record
  }
  window_.push_back(faulted);
  if (faulted) {
    ++window_faults_;
  }
  while (window_.size() > options_.window) {
    if (window_.front()) {
      --window_faults_;
    }
    window_.pop_front();
  }
  if (window_faults_ >= options_.quarantine_faults) {
    since_probe_ = 0;
    probe_streak_ = 0;
    episode_requests_ = 0;
    ++counters_.quarantine_entries;
    transition(HealthState::kQuarantined);
  } else if (window_faults_ >= options_.suspect_faults) {
    if (state_ != HealthState::kSuspect) {
      transition(HealthState::kSuspect);
    }
  } else if (state_ != HealthState::kHealthy) {
    // Window drained below the suspect threshold: recover silently.
    transition(HealthState::kHealthy);
  }
}

}  // namespace gpuksel::serve
