// One device of the sharded serving pool.
//
// A DeviceShard owns an independent simt::Device plus a BatchedKnn engine
// over one contiguous slice [begin, begin + rows) of the global reference
// set.  It answers query batches with shard-local indices remapped to global
// ones, and implements the shard-level fault policy the ISSUE specifies: a
// SimtFaultError is retried once (transient-fault model — the injector's
// budget decides whether the retry survives), and a second fault either
// propagates or, when exclusion is allowed, degrades the shard to a
// host-path recompute of its partition.  The host path shares the fused
// kernel's FP op order, so a degraded shard still contributes bit-identical
// partials and the merged result stays exact.
#pragma once

#include <cstdint>
#include <vector>

#include "knn/batch.hpp"
#include "simt/device.hpp"

namespace gpuksel::serve {

/// What happened on one shard while serving one request.
struct ShardStats {
  std::uint32_t shard_id = 0;
  std::uint32_t retries = 0;  ///< GPU attempts beyond the first (0 or 1)
  /// True when the shard's partition was recomputed on the host after the
  /// retry also faulted (the request is degraded, not failed).
  bool excluded = false;
  std::vector<FaultRecord> faults;
  /// GPU metrics of the successful attempt (zero when excluded).
  simt::KernelMetrics metrics;
  /// Modeled device seconds of the successful attempt (0 when excluded).
  double modeled_seconds = 0.0;
};

class DeviceShard {
 public:
  /// `slice` is the shard's rows (already cut from the global set); `begin`
  /// is the global index of its first row.  fallback_to_host is forced off
  /// on the engine: fault handling is this class's job, and a silent
  /// engine-level fallback would hide the retry/exclusion policy.
  DeviceShard(std::uint32_t id, std::uint32_t begin, knn::Dataset slice,
              knn::BatchedKnnOptions options);

  [[nodiscard]] std::uint32_t id() const noexcept { return id_; }
  /// Global index of the first reference row this shard holds.
  [[nodiscard]] std::uint32_t begin() const noexcept { return begin_; }
  [[nodiscard]] std::uint32_t rows() const noexcept { return engine_.size(); }
  [[nodiscard]] std::uint32_t dim() const noexcept { return engine_.dim(); }

  [[nodiscard]] simt::Device& device() noexcept { return device_; }
  [[nodiscard]] const simt::Device& device() const noexcept { return device_; }
  [[nodiscard]] knn::BatchedKnn& engine() noexcept { return engine_; }

  /// Answers the batch over this shard's partition; per-query lists carry
  /// *global* indices.  Faults follow the retry-once policy; when the retry
  /// faults too, `allow_exclusion` decides between rethrowing and the host
  /// recompute.  `stats` is overwritten with this request's outcome.
  [[nodiscard]] std::vector<std::vector<Neighbor>> search(
      const knn::Dataset& queries, std::uint32_t k, bool allow_exclusion,
      ShardStats& stats);

 private:
  [[nodiscard]] std::vector<std::vector<Neighbor>> remap(
      std::vector<std::vector<Neighbor>> neighbors) const;

  std::uint32_t id_;
  std::uint32_t begin_;
  simt::Device device_;
  knn::BatchedKnn engine_;
};

}  // namespace gpuksel::serve
