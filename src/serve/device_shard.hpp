// One device of the sharded serving pool.
//
// A DeviceShard owns an independent simt::Device plus one of two engines
// over its partition of the global reference set:
//
//  * flat — a BatchedKnn over one contiguous row slice [begin, begin + rows)
//    of the original set; answers carry shard-local indices remapped to
//    global ones.
//  * IVF — an IvfKnn shard view (IvfKnn::shard_view) owning a contiguous
//    inverted-list range of a globally trained index; its answers already
//    carry original global row ids, so no remap happens.
//
// Either way the shard implements the same fault policy: a SimtFaultError is
// retried once (transient-fault model — the injector's budget decides
// whether the retry survives), and a second fault either propagates or, when
// exclusion is allowed, degrades the shard to a host-path recompute of its
// partition.  The host path shares the fused kernel's FP op order (for IVF,
// IvfKnn::search_host is the bit-exact scalar mirror of the pruned
// pipeline), so a degraded shard still contributes bit-identical partials
// and the merged result stays exact.
//
// Layered on top of the per-request policy is a ShardHealth state machine
// (shard_health.hpp): a shard whose sliding fault window crosses the
// quarantine threshold stops receiving GPU attempts entirely — its requests
// are host-recomputed with no retry tax — and periodic probe requests (one
// GPU attempt, no retry) decide re-admission.  A deadline budget can skip
// the retry when the remaining wall budget cannot cover a second attempt.
#pragma once

#include <chrono>
#include <cstdint>
#include <memory>
#include <optional>
#include <vector>

#include "knn/batch.hpp"
#include "knn/ivf.hpp"
#include "knn/mutable.hpp"
#include "serve/shard_health.hpp"
#include "simt/device.hpp"

namespace gpuksel::serve {

/// What happened on one shard while serving one request.
struct ShardStats {
  std::uint32_t shard_id = 0;
  std::uint32_t retries = 0;  ///< GPU attempts beyond the first (0 or 1)
  std::uint32_t failed_attempts = 0;  ///< GPU attempts that faulted (0..2)
  /// True when the shard's partition was recomputed on the host (the request
  /// is degraded, not failed) — after a failed retry, a failed probe, a
  /// budget-skipped retry, or while quarantined.
  bool excluded = false;
  /// True when the shard was quarantined and served by host recompute with
  /// no GPU attempt at all.
  bool quarantine_served = false;
  /// True when the single GPU attempt doubled as a re-admission probe.
  bool probe = false;
  /// True when the deadline budget could not cover a second attempt, so the
  /// retry was skipped and the shard degraded straight to the host path.
  bool budget_skipped_retry = false;
  /// Health state the request was planned under (kProbing for probes).
  HealthState health_state = HealthState::kHealthy;
  std::vector<FaultRecord> faults;
  /// GPU metrics of the successful attempt (zero when excluded).
  simt::KernelMetrics metrics;
  /// Modeled device seconds of the successful attempt (0 when excluded).
  double modeled_seconds = 0.0;
  /// Device work executed by faulted attempts before the abort (delta of the
  /// device's cumulative metrics across the attempt).  Together with
  /// `metrics` this partitions the device's cumulative counters exactly:
  /// useful + wasted == everything the device ever ran.
  simt::KernelMetrics wasted_metrics;
  /// Modeled seconds of wasted_metrics under the engine's cost model.
  double wasted_seconds = 0.0;
  /// Modeled fault-path charges assigned by ShardedKnn (sync-detection tax
  /// for aborted attempts plus the host-recompute penalty when excluded).
  /// Not device time — kept separate from modeled/wasted seconds.
  double penalty_seconds = 0.0;
};

class DeviceShard {
 public:
  /// Flat shard: `slice` is the shard's rows (already cut from the global
  /// set); `begin` is the global index of its first row.  fallback_to_host
  /// is forced off on the engine: fault handling is this class's job, and a
  /// silent engine-level fallback would hide the retry/exclusion policy.
  DeviceShard(std::uint32_t id, std::uint32_t begin, knn::Dataset slice,
              knn::BatchedKnnOptions options, HealthOptions health = {});

  /// IVF shard: `engine` is an IvfKnn shard view (IvfKnn::shard_view) over a
  /// contiguous list range of a globally trained index; begin() is its
  /// offset in the global *reordered* row space.  The view must have been
  /// built with fallback_to_host off (checked) — same reasoning as the flat
  /// constructor, but IvfOptions are baked in at view construction.
  DeviceShard(std::uint32_t id, knn::IvfKnn engine, HealthOptions health = {});

  /// Mutable shard: a MutableKnn over the initial row slice, accepting
  /// streaming upserts/removes (see knn/mutable.hpp).  Initial rows get ids
  /// id_base .. id_base + slice.count - 1 (ShardedKnn passes the global row
  /// offset so ids are globally unique); answers remap the engine's logical
  /// positions to those ids via live_ids().  fallback_to_host is forced off
  /// like the flat constructor.
  DeviceShard(std::uint32_t id, std::uint32_t begin, knn::Dataset slice,
              knn::MutableKnnOptions options, std::uint32_t id_base,
              HealthOptions health = {});

  [[nodiscard]] std::uint32_t id() const noexcept { return id_; }
  /// Global index of the first reference row this shard holds (for IVF
  /// shards, in the reordered list-order row space).
  [[nodiscard]] std::uint32_t begin() const noexcept { return begin_; }
  /// Rows currently served: the live row count for a mutable shard, the
  /// engine's (fixed) row count otherwise.
  [[nodiscard]] std::uint32_t rows() const noexcept {
    return mutable_ ? mutable_->live_rows() : engine().size();
  }
  [[nodiscard]] std::uint32_t dim() const noexcept { return engine().dim(); }

  [[nodiscard]] simt::Device& device() noexcept { return device_; }
  [[nodiscard]] const simt::Device& device() const noexcept { return device_; }
  /// The exact batched engine: the flat engine itself, the IVF view's
  /// embedded differential baseline over the shard's (reordered) rows, or a
  /// mutable shard's base-snapshot engine.
  [[nodiscard]] knn::BatchedKnn& engine() noexcept {
    if (mutable_) return mutable_->base_batched();
    return ivf_ ? ivf_->batched() : *flat_;
  }
  [[nodiscard]] const knn::BatchedKnn& engine() const noexcept {
    if (mutable_) return mutable_->base_batched();
    return ivf_ ? ivf_->batched() : *flat_;
  }
  /// The IVF engine when this shard serves a list range, nullptr for flat.
  [[nodiscard]] knn::IvfKnn* ivf_engine() noexcept { return ivf_.get(); }
  [[nodiscard]] const knn::IvfKnn* ivf_engine() const noexcept {
    return ivf_.get();
  }
  /// The mutable engine when this shard accepts upserts, nullptr otherwise.
  [[nodiscard]] knn::MutableKnn* mutable_engine() noexcept {
    return mutable_.get();
  }
  [[nodiscard]] const knn::MutableKnn* mutable_engine() const noexcept {
    return mutable_.get();
  }
  [[nodiscard]] const ShardHealth& health() const noexcept { return health_; }

  /// Streaming mutations (mutable shards only).  Every mutation runs the
  /// engine's threshold check, so compaction happens synchronously on the
  /// shard's private compaction device as soon as the delta or tombstone
  /// fraction crosses its limit — deterministic and off this shard's serving
  /// device.
  void upsert(std::uint32_t id, std::span<const float> row);
  bool remove(std::uint32_t id);

  /// Answers the batch over this shard's partition; per-query lists carry
  /// *global* indices.  The health machine plans the request (GPU attempt vs
  /// quarantined host service vs probe); GPU faults follow the retry-once
  /// policy, except that probes never retry and a `deadline` whose remaining
  /// budget cannot cover a second attempt (measured by the first attempt's
  /// wall duration) skips the retry.  When the GPU path is exhausted,
  /// `allow_exclusion` decides between rethrowing and the host recompute.
  /// `stats` is overwritten with this request's outcome.
  [[nodiscard]] std::vector<std::vector<Neighbor>> search(
      const knn::Dataset& queries, std::uint32_t k, bool allow_exclusion,
      ShardStats& stats,
      std::optional<std::chrono::steady_clock::time_point> deadline =
          std::nullopt);

 private:
  [[nodiscard]] std::vector<std::vector<Neighbor>> remap(
      std::vector<std::vector<Neighbor>> neighbors) const;
  [[nodiscard]] std::vector<std::vector<Neighbor>> host_recompute(
      const knn::Dataset& queries, std::uint32_t k);
  /// The batched-pipeline options driving either engine (cost model, NaN
  /// policy, host fallback algorithm).
  [[nodiscard]] const knn::BatchedKnnOptions& batch_options() const noexcept {
    if (mutable_) return mutable_->options().batch;
    return ivf_ ? ivf_->options().batch : flat_->options();
  }

  std::uint32_t id_;
  std::uint32_t begin_;
  simt::Device device_;
  /// Exactly one of the three engines is set (flat row slice vs IVF list
  /// range vs mutable slice); heap-held so one shard type does not pay for
  /// the others.
  std::unique_ptr<knn::BatchedKnn> flat_;
  std::unique_ptr<knn::IvfKnn> ivf_;
  std::unique_ptr<knn::MutableKnn> mutable_;
  ShardHealth health_;
};

}  // namespace gpuksel::serve
