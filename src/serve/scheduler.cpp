#include "serve/scheduler.hpp"

#include <algorithm>
#include <exception>
#include <utility>

namespace gpuksel::serve {

namespace {

ServeResponse shut_down_response() {
  ServeResponse resp;
  resp.status = RequestStatus::kFailed;
  resp.error = "scheduler is shut down";
  return resp;
}

ServeResponse shed_response() {
  ServeResponse resp;
  resp.status = RequestStatus::kShed;
  resp.error = "request shed: admission queue is full";
  return resp;
}

ServeResponse expired_in_queue_response() {
  ServeResponse resp;
  resp.status = RequestStatus::kTimedOut;
  resp.error = "deadline expired while the request was queued";
  return resp;
}

}  // namespace

Scheduler::Scheduler(ShardedKnn& engine, SchedulerOptions options)
    : engine_(engine), options_(options) {
  worker_ = std::thread([this] { worker_loop(); });
}

Scheduler::~Scheduler() { shutdown(); }

Scheduler::Request Scheduler::make_request(
    knn::Dataset queries, std::uint32_t k,
    std::chrono::nanoseconds timeout) const {
  Request req;
  req.queries = std::move(queries);
  req.k = k;
  if (timeout != kNoDeadline) {
    req.has_deadline = true;
    req.deadline = std::chrono::steady_clock::now() + timeout;
  }
  return req;
}

std::size_t Scheduler::shed_expired_locked() {
  const auto now = std::chrono::steady_clock::now();
  std::size_t shed = 0;
  for (auto it = queue_.begin(); it != queue_.end();) {
    if (it->has_deadline && now >= it->deadline) {
      it->promise.set_value(expired_in_queue_response());
      it = queue_.erase(it);
      ++shed;
    } else {
      ++it;
    }
  }
  counters_.shed_expired += shed;
  return shed;
}

std::future<ServeResponse> Scheduler::submit(knn::Dataset queries,
                                             std::uint32_t k,
                                             std::chrono::nanoseconds timeout) {
  Request req = make_request(std::move(queries), k, timeout);
  std::future<ServeResponse> fut = req.promise.get_future();
  {
    std::unique_lock<std::mutex> lock(mu_);
    ++counters_.submitted;
    if (options_.overload == OverloadPolicy::kBlock) {
      if (!stopping_ && queue_.size() >= options_.queue_capacity) {
        ++counters_.backpressure_waits;
      }
      space_cv_.wait(lock, [&] {
        return stopping_ || queue_.size() < options_.queue_capacity;
      });
    } else if (!stopping_ && queue_.size() >= options_.queue_capacity) {
      if (options_.overload == OverloadPolicy::kShedOldestExpired) {
        shed_expired_locked();
      }
      if (queue_.size() >= options_.queue_capacity) {
        ++counters_.rejected;
        req.promise.set_value(shed_response());
        return fut;
      }
    }
    if (stopping_) {
      ++counters_.rejected;
      req.promise.set_value(shut_down_response());
      return fut;
    }
    queue_.push_back(std::move(req));
    ++counters_.admitted;
  }
  work_cv_.notify_one();
  return fut;
}

std::optional<std::future<ServeResponse>> Scheduler::try_submit(
    knn::Dataset queries, std::uint32_t k, std::chrono::nanoseconds timeout) {
  Request req = make_request(std::move(queries), k, timeout);
  std::future<ServeResponse> fut = req.promise.get_future();
  {
    std::unique_lock<std::mutex> lock(mu_);
    ++counters_.submitted;
    if (stopping_) {
      ++counters_.rejected;
      req.promise.set_value(shut_down_response());
      return fut;
    }
    if (queue_.size() >= options_.queue_capacity &&
        options_.overload == OverloadPolicy::kShedOldestExpired) {
      shed_expired_locked();
    }
    if (queue_.size() >= options_.queue_capacity) {
      ++counters_.rejected;
      return std::nullopt;
    }
    queue_.push_back(std::move(req));
    ++counters_.admitted;
  }
  work_cv_.notify_one();
  return fut;
}

void Scheduler::pause() {
  std::lock_guard<std::mutex> lock(mu_);
  paused_ = true;
}

void Scheduler::resume() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    paused_ = false;
  }
  work_cv_.notify_one();
}

std::size_t Scheduler::pending() const {
  std::lock_guard<std::mutex> lock(mu_);
  return queue_.size();
}

SchedulerCounters Scheduler::counters() const {
  std::lock_guard<std::mutex> lock(mu_);
  SchedulerCounters snapshot = counters_;
  snapshot.pending = queue_.size();
  return snapshot;
}

void Scheduler::shutdown() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (joined_) return;
    stopping_ = true;
  }
  work_cv_.notify_all();
  space_cv_.notify_all();
  worker_.join();
  std::lock_guard<std::mutex> lock(mu_);
  joined_ = true;
}

void Scheduler::worker_loop() {
  for (;;) {
    Request req;
    {
      std::unique_lock<std::mutex> lock(mu_);
      // A stopping scheduler drains regardless of pause, so shutdown never
      // deadlocks on a paused queue.
      work_cv_.wait(lock, [&] {
        return (stopping_ || !paused_) && (stopping_ || !queue_.empty());
      });
      if (queue_.empty()) return;  // stopping_ with nothing left to drain
      req = std::move(queue_.front());
      queue_.pop_front();
    }
    space_cv_.notify_one();
    req.promise.set_value(serve_one(req));
  }
}

ServeResponse Scheduler::serve_one(Request& req) {
  ServeResponse resp;
  if (req.has_deadline && std::chrono::steady_clock::now() >= req.deadline) {
    resp.status = RequestStatus::kTimedOut;
    resp.error = "deadline expired before the request was served";
    std::lock_guard<std::mutex> lock(mu_);
    ++counters_.timed_out_at_dequeue;
    return resp;
  }
  try {
    // Budget propagation: the engine (and through it each shard's retry
    // policy) sees the request's remaining deadline.
    std::optional<std::chrono::steady_clock::time_point> deadline;
    if (req.has_deadline) deadline = req.deadline;
    resp.result = engine_.search(req.queries, req.k, deadline);
    resp.served = true;
    if (req.has_deadline &&
        std::chrono::steady_clock::now() >= req.deadline) {
      // Expired while being served: the caller gets kTimedOut, but the
      // partial result and its stats stay attached for observability.
      resp.status = RequestStatus::kTimedOut;
      resp.error = "deadline expired while the request was being served";
      std::lock_guard<std::mutex> lock(mu_);
      ++counters_.timed_out_after_serve;
      return resp;
    }
    resp.status = RequestStatus::kOk;
    std::lock_guard<std::mutex> lock(mu_);
    ++counters_.served_ok;
    if (resp.result.degraded) ++counters_.degraded;
  } catch (const std::exception& e) {
    resp.status = RequestStatus::kFailed;
    resp.error = e.what();
    std::lock_guard<std::mutex> lock(mu_);
    ++counters_.failed;
  }
  return resp;
}

}  // namespace gpuksel::serve
