#include "serve/scheduler.hpp"

#include <exception>
#include <utility>

namespace gpuksel::serve {

namespace {

ServeResponse shut_down_response() {
  ServeResponse resp;
  resp.status = RequestStatus::kFailed;
  resp.error = "scheduler is shut down";
  return resp;
}

}  // namespace

Scheduler::Scheduler(ShardedKnn& engine, SchedulerOptions options)
    : engine_(engine), options_(options) {
  worker_ = std::thread([this] { worker_loop(); });
}

Scheduler::~Scheduler() { shutdown(); }

Scheduler::Request Scheduler::make_request(
    knn::Dataset queries, std::uint32_t k,
    std::chrono::nanoseconds timeout) const {
  Request req;
  req.queries = std::move(queries);
  req.k = k;
  if (timeout != kNoDeadline) {
    req.has_deadline = true;
    req.deadline = std::chrono::steady_clock::now() + timeout;
  }
  return req;
}

std::future<ServeResponse> Scheduler::submit(knn::Dataset queries,
                                             std::uint32_t k,
                                             std::chrono::nanoseconds timeout) {
  Request req = make_request(std::move(queries), k, timeout);
  std::future<ServeResponse> fut = req.promise.get_future();
  {
    std::unique_lock<std::mutex> lock(mu_);
    space_cv_.wait(lock, [&] {
      return stopping_ || queue_.size() < options_.queue_capacity;
    });
    if (stopping_) {
      req.promise.set_value(shut_down_response());
      return fut;
    }
    queue_.push_back(std::move(req));
  }
  work_cv_.notify_one();
  return fut;
}

std::optional<std::future<ServeResponse>> Scheduler::try_submit(
    knn::Dataset queries, std::uint32_t k, std::chrono::nanoseconds timeout) {
  Request req = make_request(std::move(queries), k, timeout);
  std::future<ServeResponse> fut = req.promise.get_future();
  {
    std::unique_lock<std::mutex> lock(mu_);
    if (stopping_) {
      req.promise.set_value(shut_down_response());
      return fut;
    }
    if (queue_.size() >= options_.queue_capacity) return std::nullopt;
    queue_.push_back(std::move(req));
  }
  work_cv_.notify_one();
  return fut;
}

void Scheduler::pause() {
  std::lock_guard<std::mutex> lock(mu_);
  paused_ = true;
}

void Scheduler::resume() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    paused_ = false;
  }
  work_cv_.notify_one();
}

std::size_t Scheduler::pending() const {
  std::lock_guard<std::mutex> lock(mu_);
  return queue_.size();
}

void Scheduler::shutdown() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (joined_) return;
    stopping_ = true;
  }
  work_cv_.notify_all();
  space_cv_.notify_all();
  worker_.join();
  std::lock_guard<std::mutex> lock(mu_);
  joined_ = true;
}

void Scheduler::worker_loop() {
  for (;;) {
    Request req;
    {
      std::unique_lock<std::mutex> lock(mu_);
      // A stopping scheduler drains regardless of pause, so shutdown never
      // deadlocks on a paused queue.
      work_cv_.wait(lock, [&] {
        return (stopping_ || !paused_) && (stopping_ || !queue_.empty());
      });
      if (queue_.empty()) return;  // stopping_ with nothing left to drain
      req = std::move(queue_.front());
      queue_.pop_front();
    }
    space_cv_.notify_one();
    req.promise.set_value(serve_one(req));
  }
}

ServeResponse Scheduler::serve_one(Request& req) {
  ServeResponse resp;
  if (req.has_deadline && std::chrono::steady_clock::now() >= req.deadline) {
    resp.status = RequestStatus::kTimedOut;
    resp.error = "deadline expired before the request was served";
    return resp;
  }
  try {
    resp.result = engine_.search(req.queries, req.k);
    resp.status = RequestStatus::kOk;
  } catch (const std::exception& e) {
    resp.status = RequestStatus::kFailed;
    resp.error = e.what();
  }
  return resp;
}

}  // namespace gpuksel::serve
