#include "serve/sharded_knn.hpp"

#include <algorithm>
#include <exception>
#include <ostream>
#include <thread>
#include <utility>

#include "core/kernels/shard_merge.hpp"
#include "serve/scheduler.hpp"
#include "simt/sanitizer.hpp"
#include "util/check.hpp"

namespace gpuksel::serve {

namespace {

/// One "pool" JSON object: the device buffer pool's exactly-partitioning
/// accounting (bytes_requested == served_from_pool + freshly_allocated; CI
/// gates the identity).
void write_pool_json(std::ostream& os, const simt::PoolStats& p) {
  os << "{\"bytes_requested\": " << p.bytes_requested
     << ", \"bytes_served_from_pool\": " << p.bytes_served_from_pool
     << ", \"bytes_freshly_allocated\": " << p.bytes_freshly_allocated
     << ", \"blocks_acquired\": " << p.blocks_acquired
     << ", \"blocks_reused\": " << p.blocks_reused
     << ", \"blocks_released\": " << p.blocks_released
     << ", \"blocks_trimmed\": " << p.blocks_trimmed
     << ", \"bytes_resident\": " << p.bytes_resident << "}";
}

HealthOptions effective_health(const ShardedKnnOptions& options) {
  HealthOptions health = options.health;
  // Quarantined service is host recompute (a degraded answer); without
  // exclusion there is no legal way to serve a quarantined shard, so the
  // state machine is forced off and faults follow the strict retry policy.
  health.enabled = health.enabled && options.exclude_faulty_shards;
  return health;
}

}  // namespace

const char* index_type_name(IndexType type) noexcept {
  switch (type) {
    case IndexType::kIvf:
      return "ivf";
    case IndexType::kMutable:
      return "mutable";
    case IndexType::kFlat:
      break;
  }
  return "flat";
}

ShardedKnn::ShardedKnn(knn::Dataset refs, ShardedKnnOptions options)
    : options_(std::move(options)), size_(refs.count), dim_(refs.dim) {
  GPUKSEL_CHECK(refs.count >= 1, "ShardedKnn needs a non-empty reference set");
  GPUKSEL_CHECK(options_.num_shards >= 1 && options_.num_shards <= refs.count,
                "ShardedKnn needs num_shards in [1, reference rows]");
  GPUKSEL_CHECK(options_.degraded_host_penalty >= 0.0,
                "degraded_host_penalty must be non-negative");
  const std::uint32_t num_shards = options_.num_shards;
  const HealthOptions health = effective_health(options_);
  merge_device_.set_worker_threads(options_.worker_threads);
  shards_.reserve(num_shards);
  if (options_.index_type == IndexType::kIvf) {
    // Train one global index (on the merge device — its metrics land in the
    // report's merge section) and hand each shard a contiguous list range.
    knn::IvfOptions iopts;
    iopts.params = options_.ivf;
    iopts.batch = options_.batch;
    iopts.batch.fallback_to_host = false;  // DeviceShard owns fault policy
    knn::IvfKnn global(std::move(refs), iopts);
    global.train(merge_device_);
    const knn::IvfIndex& idx = global.index();
    const std::uint32_t nlist = idx.nlist;
    ivf_nlist_ = nlist;
    ivf_nprobe_ = std::min(options_.ivf.nprobe, nlist);
    // Every shard needs >= 1 row and rows only come in whole lists, so there
    // must be a non-empty list per shard.
    std::vector<std::uint32_t> nonempty_suffix(std::size_t{nlist} + 1, 0);
    for (std::uint32_t l = nlist; l-- > 0;) {
      nonempty_suffix[l] = nonempty_suffix[l + 1] +
                           (idx.list_begin[l + 1] > idx.list_begin[l] ? 1 : 0);
    }
    GPUKSEL_CHECK(nonempty_suffix[0] >= num_shards,
                  "IVF sharding needs at least num_shards non-empty lists");
    // Contiguous list cut balanced by cumulative rows: boundary s aims for
    // s/num_shards of the rows, clamped so every shard keeps >= 1 row and
    // enough non-empty lists remain for the shards after it.
    list_cut_.assign(std::size_t{num_shards} + 1, nlist);
    list_cut_[0] = 0;
    std::uint32_t lo = 0;
    for (std::uint32_t s = 0; s + 1 < num_shards; ++s) {
      std::uint32_t hi_min = lo + 1;
      while (idx.list_begin[hi_min] == idx.list_begin[lo]) ++hi_min;
      std::uint32_t hi_max = hi_min;
      while (hi_max + 1 <= nlist &&
             nonempty_suffix[hi_max + 1] >= num_shards - s - 1) {
        ++hi_max;
      }
      const std::uint64_t target = (std::uint64_t{s} + 1) * size_;
      std::uint32_t hi = hi_min;
      while (hi < hi_max &&
             std::uint64_t{idx.list_begin[hi]} * num_shards < target) {
        ++hi;
      }
      list_cut_[s + 1] = hi;
      lo = hi;
    }
    for (std::uint32_t s = 0; s < num_shards; ++s) {
      knn::IvfKnn view = knn::IvfKnn::shard_view(global, list_cut_[s],
                                                 list_cut_[s + 1], iopts);
      shards_.push_back(std::make_unique<DeviceShard>(s, std::move(view),
                                                      health));
      shards_.back()->device().set_worker_threads(options_.worker_threads);
    }
  } else {
    // Contiguous split with the remainder spread over the first shards, so
    // shard sizes differ by at most one row for any (rows, num_shards).
    const bool is_mutable = options_.index_type == IndexType::kMutable;
    if (is_mutable) {
      GPUKSEL_CHECK(options_.mutable_index.base == knn::MutableBase::kFlat,
                    "kMutable sharding needs a flat base engine (per-shard "
                    "IVF training would not reproduce a global index)");
      initial_cut_.reserve(std::size_t{num_shards} + 1);
      initial_cut_.push_back(0);
      next_id_ = size_;
    }
    const std::uint32_t base = size_ / num_shards;
    const std::uint32_t rem = size_ % num_shards;
    std::uint32_t begin = 0;
    for (std::uint32_t s = 0; s < num_shards; ++s) {
      const std::uint32_t rows = base + (s < rem ? 1 : 0);
      knn::Dataset slice;
      slice.count = rows;
      slice.dim = dim_;
      slice.values.assign(
          refs.values.begin() + std::size_t{begin} * dim_,
          refs.values.begin() + (std::size_t{begin} + rows) * dim_);
      if (is_mutable) {
        knn::MutableKnnOptions mopts = options_.mutable_index;
        mopts.batch = options_.batch;  // one pipeline config for every shard
        shards_.push_back(std::make_unique<DeviceShard>(
            s, begin, std::move(slice), std::move(mopts), /*id_base=*/begin,
            health));
      } else {
        shards_.push_back(std::make_unique<DeviceShard>(
            s, begin, std::move(slice), options_.batch, health));
      }
      shards_.back()->device().set_worker_threads(options_.worker_threads);
      begin += rows;
      if (is_mutable) initial_cut_.push_back(begin);
    }
  }
  totals_.resize(num_shards);
}

std::uint32_t ShardedKnn::live_rows() const noexcept {
  std::uint32_t live = 0;
  for (const auto& shard : shards_) live += shard->rows();
  return live;
}

std::uint32_t ShardedKnn::shard_for_id(std::uint32_t id) const {
  GPUKSEL_CHECK(options_.index_type == IndexType::kMutable,
                "id routing needs a kMutable-sharded engine");
  if (id < size_) {
    // Initial ids are the original row indices: binary-search the cut.  The
    // assignment is permanent, so a removed-then-reinserted id lands on the
    // same shard and one id can never be live on two shards.
    const auto it =
        std::upper_bound(initial_cut_.begin(), initial_cut_.end(), id);
    return static_cast<std::uint32_t>(it - initial_cut_.begin() - 1);
  }
  const auto it = minted_id_shard_.find(id);
  GPUKSEL_CHECK(it != minted_id_shard_.end(),
                "unknown id: only insert() mints ids above the initial rows");
  return it->second;
}

std::uint32_t ShardedKnn::insert(std::span<const float> row) {
  GPUKSEL_CHECK(options_.index_type == IndexType::kMutable,
                "insert needs a kMutable-sharded engine");
  // Least-live shard, lowest id on ties: deterministic load balancing.
  std::uint32_t target = 0;
  for (std::uint32_t s = 1; s < shards_.size(); ++s) {
    if (shards_[s]->rows() < shards_[target]->rows()) target = s;
  }
  const std::uint32_t id = next_id_++;
  minted_id_shard_.emplace(id, target);
  shards_[target]->upsert(id, row);
  return id;
}

void ShardedKnn::upsert(std::uint32_t id, std::span<const float> row) {
  shards_[shard_for_id(id)]->upsert(id, row);
}

bool ShardedKnn::remove(std::uint32_t id) {
  return shards_[shard_for_id(id)]->remove(id);
}

void ShardedKnn::set_nprobe(std::uint32_t nprobe) {
  GPUKSEL_CHECK(options_.index_type == IndexType::kIvf,
                "set_nprobe needs an IVF-sharded engine");
  for (auto& shard : shards_) shard->ivf_engine()->set_nprobe(nprobe);
  ivf_nprobe_ = std::min(nprobe, ivf_nlist_);
}

ShardedResult ShardedKnn::search(
    const knn::Dataset& queries, std::uint32_t k,
    std::optional<std::chrono::steady_clock::time_point> deadline) {
  GPUKSEL_CHECK(queries.count == 0 || queries.dim == dim_,
                "query/reference dim mismatch");
  GPUKSEL_CHECK(k >= 1, "ShardedKnn needs k >= 1");
  const auto num_shards = static_cast<std::uint32_t>(shards_.size());

  ShardedResult out;
  out.shards.resize(num_shards);
  std::vector<std::vector<std::vector<Neighbor>>> partials(num_shards);
  // Marks shards whose serve actually ran (their ShardStats are meaningful)
  // so a failed request's work still lands in the cumulative totals.
  std::vector<char> served(num_shards, 0);
  const auto run_shard = [&](std::uint32_t s) {
    served[s] = 1;
    partials[s] = shards_[s]->search(queries, k,
                                     options_.exclude_faulty_shards,
                                     out.shards[s], deadline);
  };
  const auto accumulate = [&](std::uint32_t s) {
    const ShardStats& st = out.shards[s];
    ShardTotals& tot = totals_[s];
    tot.requests += 1;
    tot.retries += st.retries;
    tot.exclusions += st.excluded ? 1 : 0;
    tot.faults += st.faults.size();
    tot.failed_attempts += st.failed_attempts;
    tot.budget_skipped_retries += st.budget_skipped_retry ? 1 : 0;
    tot.modeled_seconds += st.modeled_seconds;
    tot.wasted_seconds += st.wasted_seconds;
    tot.penalty_seconds += st.penalty_seconds;
    tot.useful_metrics += st.metrics;
    tot.wasted_metrics += st.wasted_metrics;
  };

  std::exception_ptr failure;
  if (options_.parallel_fanout && num_shards > 1) {
    // One host thread per shard; each thread drives only its own Device and
    // writes only its own partials/stats slot.  Exceptions are captured per
    // slot and rethrown in ascending shard order, so a multi-shard failure
    // surfaces the same error the sequential fan-out would.
    std::vector<std::exception_ptr> errors(num_shards);
    std::vector<std::thread> workers;
    workers.reserve(num_shards - 1);
    for (std::uint32_t s = 1; s < num_shards; ++s) {
      workers.emplace_back([&, s] {
        try {
          run_shard(s);
        } catch (...) {
          errors[s] = std::current_exception();
        }
      });
    }
    try {
      run_shard(0);
    } catch (...) {
      errors[0] = std::current_exception();
    }
    for (std::thread& w : workers) w.join();
    for (const std::exception_ptr& e : errors) {
      if (e != nullptr && failure == nullptr) failure = e;
    }
  } else {
    for (std::uint32_t s = 0; s < num_shards; ++s) {
      try {
        run_shard(s);
      } catch (...) {
        failure = std::current_exception();
        break;
      }
    }
  }
  if (failure != nullptr) {
    // The request fails, but the device work (and fault evidence) already
    // happened: absorb the served shards' stats so the cumulative totals —
    // and the useful + wasted partition of each device's counters — stay
    // exact, then rethrow.
    for (std::uint32_t s = 0; s < num_shards; ++s) {
      if (served[s]) accumulate(s);
    }
    requests_ += 1;
    std::rethrow_exception(failure);
  }

  // Merge under the same NaN policy the shard pipelines ran with, so loaded
  // partial distances get identical sanitizer semantics.
  {
    simt::ScopedNanPolicy guard(merge_device_.sanitizer(),
                                options_.batch.nan_policy);
    kernels::ShardMergeOutput merged =
        kernels::shard_merge(merge_device_, partials, queries.count, k,
                             options_.batch.batch.select);
    out.neighbors = std::move(merged.neighbors);
    out.merge_metrics = merged.metrics;
  }
  out.merge_seconds =
      options_.batch.cost_model.kernel_seconds(out.merge_metrics);

  // Fault-path latency model.  wasted_seconds only covers device work the
  // aborted attempts actually executed — a fault in the first tile wastes
  // almost nothing by that measure, yet the serving thread still paid a full
  // attempt before the post-attempt sync surfaced the fault.  Charge each
  // failed attempt up to one clean-attempt estimate (extrapolated from the
  // fastest clean sibling shard's per-row seconds — deterministic, modeled),
  // and each host recompute degraded_host_penalty clean attempts.  When no
  // shard produced a clean attempt this request the estimate degrades to 0:
  // there is nothing to extrapolate from.
  double per_row_clean = 0.0;
  for (std::uint32_t s = 0; s < num_shards; ++s) {
    const ShardStats& st = out.shards[s];
    if (st.failed_attempts == 0 && !st.excluded && st.modeled_seconds > 0.0 &&
        shards_[s]->rows() > 0) {
      per_row_clean = std::max(per_row_clean,
                               st.modeled_seconds / shards_[s]->rows());
    }
  }
  double slowest_shard = 0.0;
  for (std::uint32_t s = 0; s < num_shards; ++s) {
    ShardStats& st = out.shards[s];
    const double est_attempt = per_row_clean * shards_[s]->rows();
    if (st.failed_attempts > 0) {
      st.penalty_seconds += std::max(
          0.0, st.failed_attempts * est_attempt - st.wasted_seconds);
    }
    if (st.excluded) {
      st.penalty_seconds += options_.degraded_host_penalty * est_attempt;
    }
    slowest_shard = std::max(slowest_shard, st.modeled_seconds +
                                                st.wasted_seconds +
                                                st.penalty_seconds);
    out.degraded = out.degraded || st.excluded;
    accumulate(s);
  }
  out.modeled_seconds = slowest_shard + out.merge_seconds;
  requests_ += 1;
  if (out.degraded) degraded_requests_ += 1;
  merge_seconds_total_ += out.merge_seconds;
  return out;
}

void ShardedKnn::attach_profilers() {
  if (!profilers_.empty()) return;
  profilers_.reserve(shards_.size() + 1);
  for (auto& shard : shards_) {
    profilers_.push_back(
        std::make_unique<simt::Profiler>(options_.batch.cost_model));
    shard->device().set_profiler(profilers_.back().get());
  }
  profilers_.push_back(
      std::make_unique<simt::Profiler>(options_.batch.cost_model));
  merge_device_.set_profiler(profilers_.back().get());
}

void ShardedKnn::drain_profiles(simt::Profiler& sink,
                                const std::string& prefix) {
  if (profilers_.empty()) return;
  for (std::size_t s = 0; s < shards_.size(); ++s) {
    sink.absorb(*profilers_[s], prefix + "shard" + std::to_string(s) + "/");
    profilers_[s]->clear();
  }
  sink.absorb(*profilers_.back(), prefix + "merge/");
  profilers_.back()->clear();
}

void ShardedKnn::write_shard_report(std::ostream& os,
                                    const SchedulerCounters* scheduler) const {
  simt::KernelMetrics total;
  std::uint64_t total_h2d = 0;
  std::uint64_t total_d2h = 0;
  os << "{\n  \"schema\": \"gpuksel.shards.v1\",\n"
     << "  \"num_shards\": " << shards_.size() << ",\n"
     << "  \"reference_rows\": " << size_ << ",\n"
     << "  \"dim\": " << dim_ << ",\n"
     << "  \"index_type\": \"" << index_type_name(options_.index_type)
     << "\",\n";
  if (options_.index_type == IndexType::kIvf) {
    os << "  \"ivf\": {\"nlist\": " << ivf_nlist_
       << ", \"nprobe\": " << ivf_nprobe_ << "},\n";
  }
  if (options_.index_type == IndexType::kMutable) {
    os << "  \"live_rows\": " << live_rows() << ",\n";
  }
  os << "  \"requests\": " << requests_ << ",\n"
     << "  \"degraded_requests\": " << degraded_requests_ << ",\n"
     << "  \"shards\": [";
  const char* sep = "";
  for (std::size_t s = 0; s < shards_.size(); ++s) {
    const DeviceShard& shard = *shards_[s];
    const ShardTotals& tot = totals_[s];
    const simt::KernelMetrics& m = shard.device().cumulative();
    const simt::TransferStats& tx = shard.device().transfers();
    total += m;
    total_h2d += tx.bytes_h2d;
    total_d2h += tx.bytes_d2h;
    os << sep << "\n    {\"shard\": " << s << ", \"begin\": " << shard.begin()
       << ", \"rows\": " << shard.rows();
    if (options_.index_type == IndexType::kIvf) {
      os << ", \"list_lo\": " << list_cut_[s]
         << ", \"list_hi\": " << list_cut_[s + 1];
    }
    os << ", \"requests\": " << tot.requests
       << ", \"retries\": " << tot.retries
       << ", \"exclusions\": " << tot.exclusions
       << ", \"faults\": " << tot.faults
       << ", \"failed_attempts\": " << tot.failed_attempts
       << ", \"budget_skipped_retries\": " << tot.budget_skipped_retries
       << ", \"modeled_seconds\": " << tot.modeled_seconds
       << ", \"wasted_seconds\": " << tot.wasted_seconds
       << ", \"penalty_seconds\": " << tot.penalty_seconds
       << ", \"transfers\": {\"bytes_h2d\": " << tx.bytes_h2d
       << ", \"bytes_d2h\": " << tx.bytes_d2h << "},\n     \"health\": ";
    {
      const ShardHealth& health = shard.health();
      const HealthCounters& hc = health.counters();
      os << "{\"state\": \"" << health_state_name(health.state()) << "\""
         << ", \"enabled\": " << (health.options().enabled ? "true" : "false")
         << ", \"requests\": " << hc.requests
         << ", \"healthy_served\": " << hc.healthy_served
         << ", \"suspect_served\": " << hc.suspect_served
         << ", \"quarantined_served\": " << hc.quarantined_served
         << ", \"probes_served\": " << hc.probes_served
         << ", \"probe_successes\": " << hc.probe_successes
         << ", \"probe_failures\": " << hc.probe_failures
         << ", \"quarantine_entries\": " << hc.quarantine_entries
         << ", \"quarantine_exits\": " << hc.quarantine_exits
         << ", \"quarantined_requests\": " << hc.quarantined_requests
         << ", \"longest_quarantine\": " << hc.longest_quarantine
         << ", \"transitions\": " << hc.transitions
         << ", \"transition_log\": [";
      const char* tsep = "";
      for (const HealthTransition& t : health.transitions()) {
        os << tsep << "{\"request\": " << t.request << ", \"from\": \""
           << health_state_name(t.from) << "\", \"to\": \""
           << health_state_name(t.to) << "\"}";
        tsep = ", ";
      }
      os << "]}";
    }
    os << ",\n     \"pool\": ";
    write_pool_json(os, shard.device().pool().stats());
    if (const knn::MutableKnn* engine = shard.mutable_engine();
        engine != nullptr) {
      const knn::MutableStats ms = engine->stats();
      os << ",\n     \"mutable\": {\"base_rows\": " << ms.base_rows
         << ", \"delta_rows\": " << ms.delta_rows
         << ", \"tombstones\": " << ms.tombstones
         << ", \"live_rows\": " << ms.live_rows
         << ", \"generation\": " << ms.generation
         << ", \"upserts\": " << ms.upserts
         << ", \"removes\": " << ms.removes
         << ", \"compactions\": " << ms.compactions
         << ", \"compactions_aborted\": " << ms.compactions_aborted
         << ", \"compactions_failed\": " << ms.compactions_failed
         << ", \"delta_bytes_uploaded\": " << ms.delta_bytes_uploaded
         << ", \"delta_rows_synced\": " << ms.delta_rows_synced
         << ", \"tombstone_words_synced\": " << ms.tombstone_words_synced
         << "}";
    }
    // useful + wasted partition this shard's cumulative device metrics
    // exactly (failed requests included — their stats are absorbed before
    // the rethrow).
    os << ",\n     \"useful_metrics\": ";
    simt::write_metrics_json(os, tot.useful_metrics);
    os << ",\n     \"wasted_metrics\": ";
    simt::write_metrics_json(os, tot.wasted_metrics);
    os << ",\n     \"metrics\": ";
    simt::write_metrics_json(os, m);
    os << "}";
    sep = ",";
  }
  os << (shards_.empty() ? "]" : "\n  ]") << ",\n  \"merge\": {";
  {
    const simt::KernelMetrics& m = merge_device_.cumulative();
    const simt::TransferStats& tx = merge_device_.transfers();
    total += m;
    total_h2d += tx.bytes_h2d;
    total_d2h += tx.bytes_d2h;
    os << "\"modeled_seconds\": " << merge_seconds_total_
       << ", \"transfers\": {\"bytes_h2d\": " << tx.bytes_h2d
       << ", \"bytes_d2h\": " << tx.bytes_d2h << "},\n    \"pool\": ";
    write_pool_json(os, merge_device_.pool().stats());
    os << ",\n    \"metrics\": ";
    simt::write_metrics_json(os, m);
  }
  os << "},\n";
  if (scheduler != nullptr) {
    const SchedulerCounters& sc = *scheduler;
    os << "  \"scheduler\": {\"submitted\": " << sc.submitted
       << ", \"admitted\": " << sc.admitted
       << ", \"rejected\": " << sc.rejected
       << ", \"shed_expired\": " << sc.shed_expired
       << ", \"served_ok\": " << sc.served_ok
       << ", \"timed_out_at_dequeue\": " << sc.timed_out_at_dequeue
       << ", \"timed_out_after_serve\": " << sc.timed_out_after_serve
       << ", \"failed\": " << sc.failed
       << ", \"degraded\": " << sc.degraded
       << ", \"backpressure_waits\": " << sc.backpressure_waits
       << ", \"pending\": " << sc.pending << "},\n";
  }
  // The partition invariant CI checks: the shard metrics plus the merge
  // metrics sum exactly to these totals (each launch runs on exactly one
  // device and every device is listed once).
  os << "  \"total\": {\"transfers\": {\"bytes_h2d\": " << total_h2d
     << ", \"bytes_d2h\": " << total_d2h << "},\n    \"metrics\": ";
  simt::write_metrics_json(os, total);
  os << "}\n}\n";
}

}  // namespace gpuksel::serve
