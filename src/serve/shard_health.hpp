// Per-shard health state machine for the sharded serving pool.
//
// PR 5's fault policy is purely per-request: a shard that faults is retried
// once and host-recomputed for that request only, then hit again by the very
// next request — under a persistent single-shard failure every call re-pays
// the retry + host-recompute tax and nothing ever recovers.  ShardHealth
// turns device health into first-class state, the way billion-scale serving
// systems (FAISS, Johnson et al.) treat it:
//
//     healthy --faults in window--> suspect --more faults--> quarantined
//        ^                                                       |
//        |                                               every probe_interval
//        +-- probe_successes consecutive clean probes -- probing <+
//
//  * healthy / suspect: requests run on the GPU with the retry policy;
//    suspect is the observational "recent faults in the sliding window"
//    state between healthy and quarantined.
//  * quarantined: requests are served by host recompute WITHOUT any GPU
//    attempt — no retries burned, no fault-path tax.  Every probe_interval-th
//    quarantined request doubles as a probe.
//  * probing: the shard is actively re-testing — the request issues one GPU
//    attempt (no retry: probes are deliberately low-cost).  A clean probe
//    serves its GPU result (the request is NOT degraded) and advances the
//    re-admission streak; a faulted probe falls back to the host and returns
//    the shard to quarantined.  probe_successes consecutive clean probes
//    re-admit the shard (window cleared).
//
// The time base is *served requests*, not wall clock: transitions are a pure
// function of the request outcome sequence, so the chaos harness can replay
// seeded fault schedules and assert exact state trajectories.
//
// Thread-safety: none — one ShardHealth per DeviceShard, driven only by that
// shard's fan-out thread (one request at a time).
#pragma once

#include <cstdint>
#include <deque>
#include <vector>

namespace gpuksel::serve {

enum class HealthState : std::uint8_t {
  kHealthy,
  kSuspect,
  kQuarantined,
  kProbing,
};

[[nodiscard]] constexpr const char* health_state_name(
    HealthState state) noexcept {
  switch (state) {
    case HealthState::kHealthy: return "healthy";
    case HealthState::kSuspect: return "suspect";
    case HealthState::kQuarantined: return "quarantined";
    case HealthState::kProbing: return "probing";
  }
  return "unknown";
}

struct HealthOptions {
  /// Master switch: off = PR 5's stateless retry-once-then-exclude policy.
  bool enabled = true;
  /// Sliding window of the last `window` GPU-attempted request outcomes.
  std::uint32_t window = 8;
  /// Faulted requests in the window that make a healthy shard suspect.
  std::uint32_t suspect_faults = 1;
  /// Faulted requests in the window that quarantine the shard.
  std::uint32_t quarantine_faults = 3;
  /// Quarantined requests between probes (the probe_interval-th quarantined
  /// request doubles as a probe).
  std::uint32_t probe_interval = 4;
  /// Consecutive clean probes required to re-admit the shard.
  std::uint32_t probe_successes = 2;
};

/// One state-machine edge, stamped with the shard-local served-request
/// ordinal (0-based) of the request that caused it.
struct HealthTransition {
  std::uint64_t request = 0;
  HealthState from = HealthState::kHealthy;
  HealthState to = HealthState::kHealthy;

  friend bool operator==(const HealthTransition&,
                         const HealthTransition&) = default;
};

/// Cumulative health counters (since construction).  Partition invariants
/// the report check enforces:
///   healthy_served + suspect_served + quarantined_served + probes_served
///     == requests
///   probes_served == probe_successes + probe_failures
///   quarantine_entries - quarantine_exits == 1 iff the current state is
///     quarantined or probing, else 0
struct HealthCounters {
  std::uint64_t requests = 0;           ///< requests planned through the machine
  std::uint64_t healthy_served = 0;     ///< served while healthy
  std::uint64_t suspect_served = 0;     ///< served while suspect
  std::uint64_t quarantined_served = 0; ///< host-served, no GPU attempt
  std::uint64_t probes_served = 0;      ///< requests that doubled as probes
  std::uint64_t probe_successes = 0;
  std::uint64_t probe_failures = 0;
  std::uint64_t quarantine_entries = 0;
  std::uint64_t quarantine_exits = 0;   ///< re-admissions (probing -> healthy)
  /// Total requests spent quarantined or probing (quarantine duration, in
  /// the deterministic request time base).
  std::uint64_t quarantined_requests = 0;
  std::uint64_t longest_quarantine = 0; ///< longest single episode, requests
  std::uint64_t transitions = 0;        ///< every edge, including probe dips
};

class ShardHealth {
 public:
  explicit ShardHealth(HealthOptions options = {});

  [[nodiscard]] HealthState state() const noexcept { return state_; }
  [[nodiscard]] const HealthOptions& options() const noexcept {
    return options_;
  }
  [[nodiscard]] const HealthCounters& counters() const noexcept {
    return counters_;
  }
  /// Transition log (capped at kMaxLoggedTransitions; counters_.transitions
  /// keeps the exact count).
  [[nodiscard]] const std::vector<HealthTransition>& transitions()
      const noexcept {
    return log_;
  }

  /// How DeviceShard::search should serve the next request.
  struct Plan {
    bool gpu_attempt = true;  ///< false: host recompute, no device work
    bool probe = false;       ///< the GPU attempt doubles as a probe (no retry)
  };

  /// Advances the request clock and decides the serving plan from the
  /// current state.  Must be paired with exactly one record_outcome() call.
  [[nodiscard]] Plan plan_request();

  /// Records the outcome of the request planned by the last plan_request():
  /// `faulted` is whether any GPU fault occurred (meaningless and ignored
  /// when the plan had no GPU attempt).  Drives every transition.
  void record_outcome(const Plan& plan, bool faulted);

  static constexpr std::size_t kMaxLoggedTransitions = 256;

 private:
  void transition(HealthState to);
  void note_quarantined_request();

  HealthOptions options_;
  HealthState state_ = HealthState::kHealthy;
  /// Sliding window of GPU-attempted request outcomes (true = faulted).
  std::deque<bool> window_;
  std::uint32_t window_faults_ = 0;
  std::uint32_t since_probe_ = 0;   ///< quarantined requests since last probe
  std::uint32_t probe_streak_ = 0;  ///< consecutive clean probes
  std::uint64_t episode_requests_ = 0;  ///< current quarantine episode length
  std::uint64_t current_request_ = 0;   ///< ordinal of the in-flight request
  HealthCounters counters_;
  std::vector<HealthTransition> log_;
};

}  // namespace gpuksel::serve
