// Umbrella header: the whole public API in one include.
//
//   #include "gpuksel.hpp"
//
// Pulls in the scalar selection API (gpuksel::select_k_smallest), the queue
// structures, Hierarchical Partition, the k-NN front ends
// (gpuksel::knn::BruteForceKnn, gpuksel::knn::BatchedKnn), the sharded
// multi-device serving layer (gpuksel::serve::ShardedKnn, Scheduler), the
// simulated-GPU kernels (gpuksel::kernels::*), the SIMT simulator
// (gpuksel::simt::*) and the baseline algorithms (gpuksel::baselines::*).
#pragma once

#include "baselines/bucket_select.hpp"
#include "baselines/clustered_sort.hpp"
#include "baselines/cpu_select.hpp"
#include "baselines/qms.hpp"
#include "baselines/radix_select.hpp"
#include "baselines/sample_select.hpp"
#include "baselines/tbs.hpp"
#include "core/buffered_search.hpp"
#include "core/hierarchical_partition.hpp"
#include "core/kernels/batch_pipeline.hpp"
#include "core/kernels/hp_kernels.hpp"
#include "core/kernels/pipeline.hpp"
#include "core/kernels/select_kernels.hpp"
#include "core/kselect.hpp"
#include "core/queues/bitonic.hpp"
#include "core/queues/heap_queue.hpp"
#include "core/queues/insertion_queue.hpp"
#include "core/queues/merge_queue.hpp"
#include "core/kernels/shard_merge.hpp"
#include "knn/batch.hpp"
#include "knn/ivf.hpp"
#include "knn/knn.hpp"
#include "knn/mutable.hpp"
#include "knn/rbc.hpp"
#include "serve/scheduler.hpp"
#include "serve/sharded_knn.hpp"
#include "simt/cost_model.hpp"
#include "simt/device.hpp"
