// CPU-side k-selection baseline (paper Table I "CPU 1" / "CPU 16").
//
// The paper uses "the heap algorithm from C++ standard library ... and
// parallelize[s] it with OpenMP": per query, a k-element max-heap maintained
// with std::push_heap/std::pop_heap, queries distributed over OpenMP threads.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "core/neighbor.hpp"

namespace gpuksel::baselines {

/// Selects the k smallest of one distance list with a std-library heap.
[[nodiscard]] std::vector<Neighbor> cpu_heap_select(
    std::span<const float> dlist, std::uint32_t k);

/// Runs cpu_heap_select for every query of a query-major Q x N matrix using
/// `threads` OpenMP threads (0 = library default).
[[nodiscard]] std::vector<std::vector<Neighbor>> cpu_select_all(
    std::span<const float> matrix, std::uint32_t num_queries, std::uint32_t n,
    std::uint32_t k, int threads);

}  // namespace gpuksel::baselines
