#include "baselines/cpu_select.hpp"

#include <omp.h>

#include <algorithm>

#include "util/check.hpp"

namespace gpuksel::baselines {

std::vector<Neighbor> cpu_heap_select(std::span<const float> dlist,
                                      std::uint32_t k) {
  GPUKSEL_CHECK(k >= 1, "cpu_heap_select needs k >= 1");
  std::vector<Neighbor> heap;
  heap.reserve(k);
  for (std::uint32_t i = 0; i < dlist.size(); ++i) {
    const Neighbor cand{dlist[i], i};
    if (heap.size() < k) {
      heap.push_back(cand);
      std::push_heap(heap.begin(), heap.end());
    } else if (cand < heap.front()) {
      std::pop_heap(heap.begin(), heap.end());
      heap.back() = cand;
      std::push_heap(heap.begin(), heap.end());
    }
  }
  std::sort_heap(heap.begin(), heap.end());
  return heap;
}

std::vector<std::vector<Neighbor>> cpu_select_all(std::span<const float> matrix,
                                                  std::uint32_t num_queries,
                                                  std::uint32_t n,
                                                  std::uint32_t k,
                                                  int threads) {
  GPUKSEL_CHECK(matrix.size() == std::size_t{num_queries} * n,
                "matrix size mismatch");
  std::vector<std::vector<Neighbor>> out(num_queries);
  if (threads <= 0) threads = omp_get_max_threads();
#pragma omp parallel for schedule(static) num_threads(threads)
  for (std::int64_t q = 0; q < static_cast<std::int64_t>(num_queries); ++q) {
    out[static_cast<std::size_t>(q)] = cpu_heap_select(
        matrix.subspan(static_cast<std::size_t>(q) * n, n), k);
  }
  return out;
}

}  // namespace gpuksel::baselines
