#include "baselines/tbs.hpp"

#include <algorithm>
#include <bit>

#include "simt/warp_ops.hpp"
#include "util/check.hpp"

namespace gpuksel::baselines {

namespace {

using kernels::EntryLanes;
using simt::F32;
using simt::LaneMask;
using simt::U32;
using simt::WarpContext;

/// Shared-memory entry array accessed cooperatively by the warp.
struct SharedEntries {
  simt::SharedArray<float> dist;
  simt::SharedArray<std::uint32_t> index;

  SharedEntries(WarpContext& ctx, std::size_t n)
      : dist(ctx, n), index(ctx, n) {}
};

/// Branch-free cooperative compare-exchange of shared slots (i[l], j[l]) per
/// lane, ordering by (dist, index); `up` selects ascending pairs.
void cmpex(WarpContext& ctx, LaneMask m, SharedEntries& e, const U32& i,
           const U32& j, const LaneMask up) {
  const F32 di = e.dist.read(m, i);
  const U32 xi = e.index.read(m, i);
  const F32 dj = e.dist.read(m, j);
  const U32 xj = e.index.read(m, j);
  // swap when out of order for the lane's direction: (di,xi) > (dj,xj)
  const LaneMask i_gt_j = ctx.lex_lt(m, dj, xj, di, xi);
  // ascending pair wants i <= j; descending wants i >= j.
  const LaneMask swap = (i_gt_j & up) | (~i_gt_j & ~up & m);
  const F32 lo_d = ctx.select(m, swap, dj, di);
  const U32 lo_x = ctx.select(m, swap, xj, xi);
  const F32 hi_d = ctx.select(m, swap, di, dj);
  const U32 hi_x = ctx.select(m, swap, xi, xj);
  e.dist.write(m, i, lo_d);
  e.index.write(m, i, lo_x);
  e.dist.write(m, j, hi_d);
  e.index.write(m, j, hi_x);
}

}  // namespace

kernels::SelectOutput tbs_select(simt::Device& dev,
                                 std::span<const float> distances,
                                 std::uint32_t num_queries, std::uint32_t n,
                                 std::uint32_t k) {
  GPUKSEL_CHECK(k >= 1 && k <= kTbsMaxK, "TBS supports 1 <= k <= 512");
  GPUKSEL_CHECK(distances.size() == std::size_t{num_queries} * n,
                "distance matrix size mismatch");
  // Truncation size: power of two covering k, at least one element per lane.
  const std::uint32_t chunk = std::max<std::uint32_t>(
      std::bit_ceil(k), simt::kWarpSize);

  const std::uint32_t threads = kernels::padded_threads(num_queries);
  auto dlist = dev.upload(distances);
  auto out_d = dev.alloc<float>(std::size_t{chunk} * threads);
  auto out_i = dev.alloc<std::uint32_t>(std::size_t{chunk} * threads);
  const auto in_span = dlist.cspan();
  auto od_span = out_d.span();
  auto oi_span = out_i.span();

  kernels::SelectOutput result;
  result.metrics =
      dev.launch("tbs_select", num_queries,
                 [&](WarpContext& ctx, std::uint32_t query) {
        const LaneMask all = simt::kFullMask;
        const U32 lane = WarpContext::lane_id();

        SharedEntries cand(ctx, chunk);   // ascending candidates
        SharedEntries trunc(ctx, chunk);  // current truncation
        // Initialise candidates to sentinels (trivially ascending).
        for (std::uint32_t ofs = 0; ofs < chunk; ofs += simt::kWarpSize) {
          U32 slot = ctx.add(all, lane, ofs);
          cand.dist.write(all, slot, F32::filled(simt::kFloatSentinel));
          cand.index.write(all, slot, U32::filled(simt::kIndexSentinel));
        }

        for (std::uint32_t r0 = 0; r0 < n; r0 += chunk) {
          // Load the truncation (query-major: contiguous, coalesced);
          // out-of-range tail becomes sentinels.
          for (std::uint32_t ofs = 0; ofs < chunk; ofs += simt::kWarpSize) {
            U32 ref = ctx.add(all, lane, r0 + ofs);
            const LaneMask in_range = ctx.iota_lt(all, r0 + ofs, n);
            const U32 src = ctx.lane_offset(in_range, query * n + r0 + ofs);
            F32 v = F32::filled(simt::kFloatSentinel);
            if (in_range) v = ctx.load(in_range, in_span, src);
            U32 idx = ctx.select(all, in_range, ref,
                                 U32::filled(simt::kIndexSentinel));
            F32 val = ctx.select(all, in_range, v,
                                 F32::filled(simt::kFloatSentinel));
            U32 slot = ctx.add(all, lane, ofs);
            trunc.dist.write(all, slot, val);
            trunc.index.write(all, slot, idx);
          }

          // Bitonic sort the truncation descending (canonical network).
          for (std::uint32_t size = 2; size <= chunk; size <<= 1) {
            for (std::uint32_t stride = size >> 1; stride >= 1; stride >>= 1) {
              for (std::uint32_t base = 0; base < chunk / 2;
                   base += simt::kWarpSize) {
                // Each lane owns pair p = base + lane.
                const LaneMask pairs = ctx.iota_lt(all, base, chunk / 2);
                if (!pairs) break;
                // Position of the lower element of pair p at this stride.
                const U32 i = ctx.bitonic_low_index(pairs, base, stride);
                U32 j = ctx.add(pairs, i, stride);
                // Descending sort: block direction flips the canonical rule.
                const LaneMask up = ctx.test_any(pairs, i, size);
                cmpex(ctx, pairs, trunc, i, j, up);
              }
            }
          }

          // Element-wise min of (ascending cand, descending trunc): the k
          // smallest of the union, as a bitonic sequence.
          for (std::uint32_t ofs = 0; ofs < chunk; ofs += simt::kWarpSize) {
            U32 slot = ctx.add(all, lane, ofs);
            const F32 cd = cand.dist.read(all, slot);
            const U32 cx = cand.index.read(all, slot);
            const F32 td = trunc.dist.read(all, slot);
            const U32 tx = trunc.index.read(all, slot);
            const LaneMask take_t = ctx.lex_lt(all, td, tx, cd, cx);
            cand.dist.write(all, slot, ctx.select(all, take_t, td, cd));
            cand.index.write(all, slot, ctx.select(all, take_t, tx, cx));
          }

          // Bitonic merge candidates back to ascending.
          for (std::uint32_t stride = chunk / 2; stride >= 1; stride >>= 1) {
            for (std::uint32_t base = 0; base < chunk / 2;
                 base += simt::kWarpSize) {
              const LaneMask pairs = ctx.iota_lt(all, base, chunk / 2);
              if (!pairs) break;
              const U32 i = ctx.bitonic_low_index(pairs, base, stride);
              U32 j = ctx.add(pairs, i, stride);
              cmpex(ctx, pairs, cand, i, j, pairs);  // ascending
            }
          }
        }

        // Write candidates to the interleaved result buffer.
        for (std::uint32_t ofs = 0; ofs < chunk; ofs += simt::kWarpSize) {
          U32 slot = ctx.add(all, lane, ofs);
          const F32 cd = cand.dist.read(all, slot);
          const U32 cx = cand.index.read(all, slot);
          const U32 dst = ctx.mad(all, slot, threads, query);
          ctx.store(all, od_span, dst, cd);
          ctx.store(all, oi_span, dst, cx);
        }
      });

  result.neighbors =
      kernels::extract_queues(out_d, out_i, num_queries, threads, chunk, k);
  return result;
}

}  // namespace gpuksel::baselines
