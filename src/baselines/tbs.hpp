// Truncated Bitonic Sort baseline (Sismanis, Pitsianis & Sun [13]).
//
// Warp-per-query, warp-cooperative: the distance list is processed in
// power-of-two truncations held in shared memory.  Each truncation is bitonic
// sorted descending; an element-wise min against the ascending candidate
// array keeps the k smallest of the union as a bitonic sequence, which one
// bitonic merge restores to ascending order.  Synchronous (divergence-free)
// operation throughout — TBS's selling point — but every truncation pays a
// full O(t log^2 t) sort, which is why the queue-based methods overtake it.
//
// The published TBS implementation supports only k <= 512 (shared-memory
// capacity on Fermi); this one mirrors that limit for the kernel.
#pragma once

#include <cstdint>
#include <span>

#include "core/kernels/select_kernels.hpp"

namespace gpuksel::baselines {

/// Largest k the TBS kernel supports (one truncation + one candidate array
/// of 8-byte entries in 48 KB of Fermi shared memory, as in the original).
inline constexpr std::uint32_t kTbsMaxK = 512;

/// Runs TBS over a Q x N distance matrix in *query-major* layout (each
/// warp streams one query's contiguous list).  k must be <= kTbsMaxK.
[[nodiscard]] kernels::SelectOutput tbs_select(simt::Device& dev,
                                               std::span<const float> distances,
                                               std::uint32_t num_queries,
                                               std::uint32_t n,
                                               std::uint32_t k);

}  // namespace gpuksel::baselines
