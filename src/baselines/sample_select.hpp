// Sample Select baseline (Monroe, Wendelberger & Michalak [11], §II-C):
// randomized selection that picks its pivots from a sample so the expected
// partition is balanced — "to avoid the worst-case performance [of Quick
// Select], sample select chooses the best pivot by taking samples".
//
// Each round samples s elements, sorts the sample, and picks the two sample
// order statistics that bracket the k-th element with high probability; one
// counting pass splits the list into below / between / above, and recursion
// continues on the (small) middle band.  Deterministic given the seed.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "core/neighbor.hpp"

namespace gpuksel::baselines {

/// Returns the k smallest (dist, index) pairs, ascending.
[[nodiscard]] std::vector<Neighbor> sample_select(std::span<const float> dlist,
                                                  std::uint32_t k,
                                                  std::uint64_t seed = 0x5eed,
                                                  std::uint32_t sample_size = 64);

}  // namespace gpuksel::baselines
