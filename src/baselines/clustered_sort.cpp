#include "baselines/clustered_sort.hpp"

#include <algorithm>

#include "baselines/radix_select.hpp"
#include "util/check.hpp"

namespace gpuksel::baselines {

std::vector<std::vector<Neighbor>> clustered_sort_select(
    std::span<const float> matrix, std::uint32_t num_queries, std::uint32_t n,
    std::uint32_t k) {
  GPUKSEL_CHECK(k >= 1, "clustered_sort_select needs k >= 1");
  GPUKSEL_CHECK(matrix.size() == std::size_t{num_queries} * n,
                "matrix size mismatch");
  // One 96-bit-equivalent key per record: (query, ordered dist, index),
  // packed so a single sort clusters queries and orders within each.
  struct Record {
    std::uint32_t query;
    std::uint64_t key;  // ordered dist in the high word, index low
  };
  std::vector<Record> records;
  records.reserve(matrix.size());
  for (std::uint32_t q = 0; q < num_queries; ++q) {
    for (std::uint32_t r = 0; r < n; ++r) {
      const float d = matrix[std::size_t{q} * n + r];
      records.push_back(
          Record{q, (std::uint64_t{float_to_ordered(d)} << 32) | r});
    }
  }
  std::sort(records.begin(), records.end(),
            [](const Record& a, const Record& b) {
              if (a.query != b.query) return a.query < b.query;
              return a.key < b.key;
            });

  std::vector<std::vector<Neighbor>> out(num_queries);
  const std::size_t take = std::min<std::size_t>(k, n);
  for (std::uint32_t q = 0; q < num_queries; ++q) {
    auto& nbrs = out[q];
    nbrs.reserve(take);
    const std::size_t base = std::size_t{q} * n;
    for (std::size_t j = 0; j < take; ++j) {
      const std::uint64_t key = records[base + j].key;
      nbrs.push_back(
          Neighbor{ordered_to_float(static_cast<std::uint32_t>(key >> 32)),
                   static_cast<std::uint32_t>(key & 0xffffffffu)});
    }
  }
  return out;
}

}  // namespace gpuksel::baselines
