#include "baselines/qms.hpp"

#include <algorithm>

#include "simt/warp_ops.hpp"
#include "util/check.hpp"

namespace gpuksel::baselines {

namespace {

using kernels::EntryLanes;
using simt::F32;
using simt::LaneMask;
using simt::U32;
using simt::WarpContext;

/// A scalar (dist, index) pivot broadcast to host control flow.
struct Pivot {
  float dist;
  std::uint32_t index;
};

constexpr bool entry_less(float ad, std::uint32_t ai, float bd,
                          std::uint32_t bi) noexcept {
  if (ad != bd) return ad < bd;
  return ai < bi;
}

}  // namespace

kernels::SelectOutput qms_select(simt::Device& dev,
                                 std::span<const float> distances,
                                 std::uint32_t num_queries, std::uint32_t n,
                                 std::uint32_t k) {
  GPUKSEL_CHECK(k >= 1, "qms_select needs k >= 1");
  GPUKSEL_CHECK(distances.size() == std::size_t{num_queries} * n,
                "distance matrix size mismatch");
  const std::uint32_t threads = kernels::padded_threads(num_queries);

  auto dlist = dev.upload(distances);
  // Double-buffered per-query scratch shared by every warp: one query's
  // worth is reused across queries, so the launch below pins
  // LaunchPolicy::kSerial — the only kernel in the repo whose warps are not
  // independent.
  auto scratch_d_a = dev.alloc<float>(n);
  auto scratch_i_a = dev.alloc<std::uint32_t>(n);
  auto scratch_d_b = dev.alloc<float>(n);
  auto scratch_i_b = dev.alloc<std::uint32_t>(n);
  auto out_d = dev.alloc<float>(std::size_t{k} * threads, simt::kFloatSentinel);
  auto out_i =
      dev.alloc<std::uint32_t>(std::size_t{k} * threads, simt::kIndexSentinel);

  const auto in_span = dlist.cspan();
  auto od_span = out_d.span();
  auto oi_span = out_i.span();

  kernels::SelectOutput result;
  result.metrics =
      dev.launch("qms_select", num_queries,
                 [&](WarpContext& ctx, std::uint32_t query) {
        const LaneMask all = simt::kFullMask;
        const U32 lane = WarpContext::lane_id();

        struct Buf {
          simt::DeviceSpan<float> d;
          simt::DeviceSpan<std::uint32_t> i;
        };
        Buf src{scratch_d_a.span(), scratch_i_a.span()};
        Buf dst{scratch_d_b.span(), scratch_i_b.span()};

        // Copy the query's list into scratch with identity indices
        // (coalesced stream; QMS must mutate its input).
        for (std::uint32_t ofs = 0; ofs < n; ofs += simt::kWarpSize) {
          U32 ref = ctx.add(all, lane, ofs);
          const LaneMask in_range =
              ctx.pred(all, [&](int l) { return ref[l] < n; });
          if (!in_range) break;
          U32 gsrc;
          ctx.alu(in_range, gsrc, [&](int l) { return query * n + ref[l]; });
          const F32 v = ctx.load(in_range, in_span, gsrc);
          ctx.store(in_range, src.d, ref, v);
          ctx.store(in_range, src.i, ref, ref);
        }

        std::uint32_t seg_start = 0;
        std::uint32_t len = n;
        std::uint32_t want = std::min(k, n);
        std::uint32_t emitted = 0;

        // Emits `count` entries from buf[first, first+count) to the result.
        auto emit = [&](const Buf& buf, std::uint32_t first,
                        std::uint32_t count) {
          for (std::uint32_t ofs = 0; ofs < count; ofs += simt::kWarpSize) {
            U32 s = ctx.add(all, lane, first + ofs);
            const LaneMask in_range = ctx.pred(
                all, [&](int l) { return s[l] < first + count; });
            if (!in_range) break;
            const F32 v = ctx.load(in_range, buf.d, s);
            const U32 x = ctx.load(in_range, buf.i, s);
            U32 dstidx;
            ctx.alu(in_range, dstidx, [&](int l) {
              return (emitted + ofs + static_cast<std::uint32_t>(l)) * threads +
                     query;
            });
            ctx.store(in_range, od_span, dstidx, v);
            ctx.store(in_range, oi_span, dstidx, x);
          }
          emitted += count;
        };

        while (want > 0) {
          if (want == len) {
            emit(src, seg_start, len);
            want = 0;
            break;
          }
          if (len <= 2 * simt::kWarpSize) {
            // Small remainder: repeated warp min-reduction ("selection sort"
            // tail), each round extracting one winner.
            for (std::uint32_t round = 0; round < want; ++round) {
              simt::KeyedLanes best{F32::filled(simt::kFloatSentinel),
                                    U32::filled(simt::kIndexSentinel)};
              // Each lane scans its strided slots for its local min.
              U32 best_slot = U32::filled(simt::kIndexSentinel);
              for (std::uint32_t ofs = 0; ofs < len; ofs += simt::kWarpSize) {
                U32 s = ctx.add(all, lane, seg_start + ofs);
                const LaneMask in_range = ctx.pred(
                    all, [&](int l) { return s[l] < seg_start + len; });
                if (!in_range) break;
                const F32 v = ctx.load(in_range, src.d, s);
                const U32 x = ctx.load(in_range, src.i, s);
                const LaneMask better = ctx.pred(in_range, [&](int l) {
                  return entry_less(v[l], x[l], best.keys[l], best.values[l]);
                });
                best.keys = ctx.select(all, better, v, best.keys);
                best.values = ctx.select(all, better, x, best.values);
                best_slot = ctx.select(all, better, s, best_slot);
              }
              const simt::KeyedLanes winner =
                  simt::reduce_min_keyed(ctx, all, best);
              // The lane holding the winner neutralises its slot.
              const LaneMask holder = ctx.pred(all, [&](int l) {
                return best.values[l] == winner.values[l] &&
                       best_slot[l] != simt::kIndexSentinel;
              });
              const LaneMask first_holder =
                  holder ? simt::lane_bit(simt::lowest_lane(holder))
                         : LaneMask{0};
              if (first_holder) {
                ctx.store(first_holder, src.d, best_slot,
                          F32::filled(simt::kFloatSentinel));
                ctx.store(first_holder, src.i, best_slot,
                          U32::filled(simt::kIndexSentinel));
                U32 dstidx;
                ctx.alu(first_holder, dstidx,
                        [&](int) { return (emitted + round) * threads + query; });
                ctx.store(first_holder, od_span, dstidx, winner.keys);
                ctx.store(first_holder, oi_span, dstidx, winner.values);
              }
            }
            want = 0;
            break;
          }

          // Median-of-three pivot from the segment ends and middle.
          const auto host_entry = [&](std::uint32_t slot) {
            return Pivot{src.d.at(slot), src.i.at(slot)};
          };
          // Three broadcast loads (lane 0), charged as such.
          {
            U32 s0 = ctx.imm(simt::lane_bit(0), seg_start);
            (void)ctx.load(simt::lane_bit(0), src.d, s0);
            U32 s1 = ctx.imm(simt::lane_bit(0), seg_start + len / 2);
            (void)ctx.load(simt::lane_bit(0), src.d, s1);
            U32 s2 = ctx.imm(simt::lane_bit(0), seg_start + len - 1);
            (void)ctx.load(simt::lane_bit(0), src.d, s2);
            ctx.issue(all, 4);  // median computation + broadcast
          }
          Pivot a = host_entry(seg_start);
          Pivot b = host_entry(seg_start + len / 2);
          Pivot c = host_entry(seg_start + len - 1);
          auto lt = [](const Pivot& x, const Pivot& y) {
            return entry_less(x.dist, x.index, y.dist, y.index);
          };
          if (lt(b, a)) std::swap(a, b);
          if (lt(c, b)) {
            b = c;
            if (lt(b, a)) std::swap(a, b);
          }
          const Pivot pivot = b;

          // Warp-cooperative three-way partition into dst: "< pivot" packs
          // forward from seg_start, "> pivot" packs backward from the end;
          // the pivot itself is held implicitly.
          std::uint32_t lo_cursor = seg_start;
          std::uint32_t hi_cursor = seg_start + len - 1;
          for (std::uint32_t ofs = 0; ofs < len; ofs += simt::kWarpSize) {
            U32 s = ctx.add(all, lane, seg_start + ofs);
            const LaneMask in_range = ctx.pred(
                all, [&](int l) { return s[l] < seg_start + len; });
            if (!in_range) break;
            const F32 v = ctx.load(in_range, src.d, s);
            const U32 x = ctx.load(in_range, src.i, s);
            const LaneMask less = ctx.pred(in_range, [&](int l) {
              return entry_less(v[l], x[l], pivot.dist, pivot.index);
            });
            const LaneMask is_pivot = ctx.pred(in_range, [&](int l) {
              return v[l] == pivot.dist && x[l] == pivot.index;
            });
            const LaneMask greater = in_range & ~less & ~is_pivot;
            // Rank within this 32-element group (ballot + popcount: the
            // canonical warp compaction).
            const LaneMask less_ballot = ctx.ballot(in_range, less);
            const LaneMask greater_ballot = ctx.ballot(in_range, greater);
            U32 dst_slot;
            ctx.alu(in_range, dst_slot, [&](int l) {
              const LaneMask below = simt::lane_bit(l) - 1;
              if (simt::lane_active(less, l)) {
                return lo_cursor + static_cast<std::uint32_t>(
                                       simt::popcount(less_ballot & below));
              }
              return hi_cursor - static_cast<std::uint32_t>(
                                     simt::popcount(greater_ballot & below));
            });
            if (less) {
              ctx.store(less, dst.d, dst_slot, v);
              ctx.store(less, dst.i, dst_slot, x);
            }
            if (greater) {
              ctx.store(greater, dst.d, dst_slot, v);
              ctx.store(greater, dst.i, dst_slot, x);
            }
            lo_cursor += static_cast<std::uint32_t>(simt::popcount(less_ballot));
            hi_cursor -= static_cast<std::uint32_t>(simt::popcount(greater_ballot));
          }
          const std::uint32_t less_count = lo_cursor - seg_start;

          if (want <= less_count) {
            // The k-th element is in the "<" side.
            len = less_count;
          } else {
            // Everything below the pivot (and the pivot, if room) is in.
            emit(dst, seg_start, less_count);
            want -= less_count;
            if (want > 0) {
              // Emit the pivot from registers.
              U32 dstidx = ctx.imm(simt::lane_bit(0), emitted * threads + query);
              ctx.store(simt::lane_bit(0), od_span, dstidx,
                        F32::filled(pivot.dist));
              ctx.store(simt::lane_bit(0), oi_span, dstidx,
                        U32::filled(pivot.index));
              ++emitted;
              --want;
            }
            const std::uint32_t greater_count = len - less_count - 1;
            seg_start = seg_start + less_count + 1;
            len = greater_count;
          }
          std::swap(src, dst);
        }
      }, simt::LaunchPolicy::kSerial);

  result.neighbors =
      kernels::extract_queues(out_d, out_i, num_queries, threads, k, k);
  return result;
}

}  // namespace gpuksel::baselines
