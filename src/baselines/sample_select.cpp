#include "baselines/sample_select.hpp"

#include <algorithm>
#include <cmath>

#include "util/check.hpp"
#include "util/rng.hpp"

namespace gpuksel::baselines {

std::vector<Neighbor> sample_select(std::span<const float> dlist,
                                    std::uint32_t k, std::uint64_t seed,
                                    std::uint32_t sample_size) {
  GPUKSEL_CHECK(k >= 1, "sample_select needs k >= 1");
  GPUKSEL_CHECK(sample_size >= 2, "sample_select needs sample_size >= 2");

  std::vector<Neighbor> cur;
  cur.reserve(dlist.size());
  for (std::uint32_t i = 0; i < dlist.size(); ++i) {
    cur.push_back(Neighbor{dlist[i], i});
  }
  std::size_t want = std::min<std::size_t>(k, cur.size());
  std::vector<Neighbor> accepted;
  accepted.reserve(want);
  Rng rng(seed);

  // Each pass narrows to a band around the k-th element; bounded passes
  // guard against degenerate samples, then a sort finishes the remainder.
  for (int pass = 0; pass < 12 && cur.size() > 4 * sample_size && want > 0;
       ++pass) {
    // Sample with replacement and sort the sample.
    std::vector<Neighbor> sample(sample_size);
    for (auto& s : sample) {
      s = cur[rng.uniform_below(cur.size())];
    }
    std::sort(sample.begin(), sample.end());
    // The k-th of cur maps to rank ~ want/|cur| in the sample; bracket it
    // with a safety margin of ~2 standard deviations of the binomial.
    const double frac = static_cast<double>(want) / cur.size();
    const double mean = frac * sample_size;
    const double margin =
        2.0 * std::sqrt(sample_size * frac * (1.0 - frac)) + 1.0;
    const auto lo_rank = static_cast<std::size_t>(
        std::max(0.0, std::floor(mean - margin)));
    const auto hi_rank = static_cast<std::size_t>(
        std::min<double>(sample_size - 1, std::ceil(mean + margin)));
    const Neighbor lo = sample[lo_rank];
    const Neighbor hi = sample[hi_rank];

    std::vector<Neighbor> below;
    std::vector<Neighbor> band;
    for (const Neighbor& n : cur) {
      if (n < lo) {
        below.push_back(n);
      } else if (!(hi < n)) {
        band.push_back(n);
      }
    }
    if (below.size() > want || below.size() + band.size() < want) {
      // The brackets missed (rare); resample.
      continue;
    }
    accepted.insert(accepted.end(), below.begin(), below.end());
    want -= below.size();
    cur = std::move(band);
  }

  std::sort(cur.begin(), cur.end());
  for (std::size_t i = 0; i < want && i < cur.size(); ++i) {
    accepted.push_back(cur[i]);
  }
  std::sort(accepted.begin(), accepted.end());
  return accepted;
}

}  // namespace gpuksel::baselines
