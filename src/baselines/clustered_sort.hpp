// Clustered-Sort baseline (Pan & Manocha [6], §II-C): Selection by Sorting
// with the sort amortised over all queries — "combines the tasks from
// multiple queries as one list and sorts them together".
//
// All Q*N (query, distance, index) records are sorted once by the composite
// key (query, dist, index); each query's k-NN are then the first k records
// of its contiguous run.  O(QN log QN) total, competitive only when the sort
// is amortised well — the trade-off the paper describes.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "core/neighbor.hpp"

namespace gpuksel::baselines {

/// Selects the k smallest per query from a query-major Q x N matrix by one
/// global sort over all queries' distances.
[[nodiscard]] std::vector<std::vector<Neighbor>> clustered_sort_select(
    std::span<const float> matrix, std::uint32_t num_queries, std::uint32_t n,
    std::uint32_t k);

}  // namespace gpuksel::baselines
