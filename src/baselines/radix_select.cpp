#include "baselines/radix_select.hpp"

#include <algorithm>
#include <array>

#include "util/check.hpp"

namespace gpuksel::baselines {

namespace {

constexpr std::uint64_t composite_key(float dist, std::uint32_t index) noexcept {
  return (std::uint64_t{float_to_ordered(dist)} << 32) | index;
}

constexpr Neighbor key_to_neighbor(std::uint64_t key) noexcept {
  return Neighbor{ordered_to_float(static_cast<std::uint32_t>(key >> 32)),
                  static_cast<std::uint32_t>(key & 0xffffffffu)};
}

}  // namespace

std::vector<Neighbor> radix_select(std::span<const float> dlist,
                                   std::uint32_t k) {
  GPUKSEL_CHECK(k >= 1, "radix_select needs k >= 1");
  std::vector<std::uint64_t> keys;
  keys.reserve(dlist.size());
  for (std::uint32_t i = 0; i < dlist.size(); ++i) {
    keys.push_back(composite_key(dlist[i], i));
  }
  std::size_t want = std::min<std::size_t>(k, keys.size());
  std::vector<std::uint64_t> accepted;
  accepted.reserve(want);

  // MSD radix: histogram the current digit, keep whole buckets that fit,
  // recurse into the bucket straddling the k-th key.
  std::vector<std::uint64_t> cur = std::move(keys);
  for (int shift = 56; shift >= 0 && want > 0; shift -= 8) {
    if (cur.size() <= 64) break;  // small remainder: finish with a sort
    std::array<std::size_t, 256> histo{};
    for (const std::uint64_t key : cur) ++histo[(key >> shift) & 0xff];
    std::size_t straddle = 0;
    std::size_t below = 0;
    while (below + histo[straddle] < want) {
      below += histo[straddle];
      ++straddle;
    }
    std::vector<std::uint64_t> next;
    next.reserve(histo[straddle]);
    for (const std::uint64_t key : cur) {
      const std::size_t digit = (key >> shift) & 0xff;
      if (digit < straddle) {
        accepted.push_back(key);
      } else if (digit == straddle) {
        next.push_back(key);
      }
    }
    want -= below;
    cur = std::move(next);
  }
  // Remaining candidates share all inspected digits; sort and take the rest.
  std::sort(cur.begin(), cur.end());
  for (std::size_t i = 0; i < want && i < cur.size(); ++i) {
    accepted.push_back(cur[i]);
  }

  std::sort(accepted.begin(), accepted.end());
  std::vector<Neighbor> out;
  out.reserve(accepted.size());
  for (const std::uint64_t key : accepted) out.push_back(key_to_neighbor(key));
  return out;
}

}  // namespace gpuksel::baselines
