// Bucket Select baseline (Alabi et al. [12], paper §II-C).
//
// Value-range bucketing: split [min, max] into uniform buckets, count, keep
// the buckets entirely below the k-th element, recurse into the straddling
// bucket.  Degenerates on skewed value distributions (all mass in one
// bucket), which is the worst case the paper alludes to; the implementation
// caps the recursion and falls back to sorting.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "core/neighbor.hpp"

namespace gpuksel::baselines {

/// Returns the k smallest (dist, index) pairs, ascending.
/// `num_buckets` tunes the fan-out of each refinement pass.
[[nodiscard]] std::vector<Neighbor> bucket_select(std::span<const float> dlist,
                                                  std::uint32_t k,
                                                  std::uint32_t num_buckets = 256);

}  // namespace gpuksel::baselines
