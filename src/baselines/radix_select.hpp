// Radix Select baseline (Alabi et al. [12], paper §II-C).
//
// MSD radix selection over a 64-bit composite key: the order-preserving
// bit-flip of the float distance in the high word and the element index in
// the low word.  Keys are therefore unique, so the selection is exact and
// deterministic even with duplicated distances — the classic weak spot of
// value-only radix selection.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "core/neighbor.hpp"

namespace gpuksel::baselines {

/// Order-preserving mapping from IEEE-754 float to uint32 (ascending).
[[nodiscard]] constexpr std::uint32_t float_to_ordered(float f) noexcept {
  const auto bits = __builtin_bit_cast(std::uint32_t, f);
  return (bits & 0x80000000u) != 0 ? ~bits : bits | 0x80000000u;
}

/// Inverse of float_to_ordered.
[[nodiscard]] constexpr float ordered_to_float(std::uint32_t u) noexcept {
  const std::uint32_t bits = (u & 0x80000000u) != 0 ? u & 0x7fffffffu : ~u;
  return __builtin_bit_cast(float, bits);
}

/// Returns the k smallest (dist, index) pairs, ascending.
[[nodiscard]] std::vector<Neighbor> radix_select(std::span<const float> dlist,
                                                 std::uint32_t k);

}  // namespace gpuksel::baselines
