// Quick Multi-Select baseline (Komarov, Dashti & D'Souza [9]).
//
// Warp-per-query iterative quickselect: partition the list around a
// median-of-three pivot with a warp-cooperative scatter (ballot + rank), keep
// the side containing the k-th element, and emit whole "smaller" sides into
// the result as soon as they fit.  Average O(N) work but data-movement heavy
// (the whole remaining range is rewritten every round), which is why its
// time grows with N faster than the queue-based methods — the effect Table I
// shows.  As in the original, the returned k-NN are NOT sorted; the host-side
// extraction sorts them for comparison purposes.
#pragma once

#include <cstdint>
#include <span>

#include "core/kernels/select_kernels.hpp"

namespace gpuksel::baselines {

/// Runs QMS over a Q x N distance matrix in *query-major* layout.
[[nodiscard]] kernels::SelectOutput qms_select(simt::Device& dev,
                                               std::span<const float> distances,
                                               std::uint32_t num_queries,
                                               std::uint32_t n,
                                               std::uint32_t k);

}  // namespace gpuksel::baselines
