#include "baselines/bucket_select.hpp"

#include <algorithm>
#include <cmath>

#include "util/check.hpp"

namespace gpuksel::baselines {

std::vector<Neighbor> bucket_select(std::span<const float> dlist,
                                    std::uint32_t k,
                                    std::uint32_t num_buckets) {
  GPUKSEL_CHECK(k >= 1, "bucket_select needs k >= 1");
  GPUKSEL_CHECK(num_buckets >= 2, "bucket_select needs >= 2 buckets");

  std::vector<Neighbor> cur;
  cur.reserve(dlist.size());
  for (std::uint32_t i = 0; i < dlist.size(); ++i) {
    cur.push_back(Neighbor{dlist[i], i});
  }
  std::size_t want = std::min<std::size_t>(k, cur.size());
  std::vector<Neighbor> accepted;
  accepted.reserve(want);

  // Each pass shrinks the candidate set; bounded passes guard against
  // pathological value distributions (all candidates equal).
  for (int pass = 0; pass < 16 && cur.size() > 2 * want + 64; ++pass) {
    float lo = cur[0].dist;
    float hi = cur[0].dist;
    for (const Neighbor& n : cur) {
      lo = std::min(lo, n.dist);
      hi = std::max(hi, n.dist);
    }
    if (!(hi > lo)) break;  // constant values: bucketing cannot refine
    // The mapping runs in double: a subnormal float range makes the float
    // scale overflow to +inf and (v - lo) * scale go NaN, scattering values
    // into garbage buckets.
    const double scale =
        static_cast<double>(num_buckets) /
        (static_cast<double>(hi) - static_cast<double>(lo));
    std::vector<std::size_t> histo(num_buckets, 0);
    auto bucket_of = [&](float v) {
      const auto b = static_cast<std::size_t>(
          (static_cast<double>(v) - static_cast<double>(lo)) * scale);
      return std::min<std::size_t>(b, num_buckets - 1);
    };
    for (const Neighbor& n : cur) ++histo[bucket_of(n.dist)];
    std::size_t straddle = 0;
    std::size_t below = 0;
    while (below + histo[straddle] < want) {
      below += histo[straddle];
      ++straddle;
    }
    std::vector<Neighbor> next;
    next.reserve(histo[straddle]);
    for (const Neighbor& n : cur) {
      const std::size_t b = bucket_of(n.dist);
      if (b < straddle) {
        accepted.push_back(n);
      } else if (b == straddle) {
        next.push_back(n);
      }
    }
    want -= below;
    cur = std::move(next);
  }

  std::sort(cur.begin(), cur.end());
  for (std::size_t i = 0; i < want && i < cur.size(); ++i) {
    accepted.push_back(cur[i]);
  }
  std::sort(accepted.begin(), accepted.end());
  return accepted;
}

}  // namespace gpuksel::baselines
